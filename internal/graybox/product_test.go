package graybox

import (
	"math/rand"
	"testing"
)

func TestProductBasics(t *testing.T) {
	// Two 2-state components: a toggler and a self-looper.
	toggle := NewBuilder("t", 2).AddTransition(0, 1).AddTransition(1, 0).SetInit(0).MustBuild()
	still := NewBuilder("s", 2).AddTransition(0, 0).AddTransition(1, 1).SetInit(1).MustBuild()
	p, err := Product("p", toggle, still)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 4 {
		t.Fatalf("states = %d", p.NumStates())
	}
	// Init: (0,1) → encoded 0 + 1*2 = 2.
	if got := p.Init(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("init = %v, want [2]", got)
	}
	// From (0,1): toggle 0→1 yields (1,1)=3; still 1→1 yields (0,1)=2.
	if !p.HasTransition(2, 3) || !p.HasTransition(2, 2) {
		t.Error("missing expected transitions from (0,1)")
	}
	// No synchronous double-step: (0,1) → (1,0) = 1 must not exist.
	if p.HasTransition(2, 1) {
		t.Error("product has a synchronous two-component step")
	}
}

func TestProductErrors(t *testing.T) {
	if _, err := Product("p"); err == nil {
		t.Error("empty product accepted")
	}
	big := NewBuilder("b", 2048).SetInit(0)
	for i := 0; i < 2048; i++ {
		big.AddTransition(i, i)
	}
	bigSys := big.MustBuild()
	if _, err := Product("p", bigSys, bigSys); err == nil {
		t.Error("oversized product accepted")
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parts := []*System{
		Random(rng, "a", 3, 1.5),
		Random(rng, "b", 4, 1.5),
		Random(rng, "c", 2, 1.5),
	}
	c := NewTupleCodec(parts)
	if c.Components() != 3 {
		t.Fatalf("Components = %d", c.Components())
	}
	tuple := make([]int, 3)
	for s := 0; s < 24; s++ {
		c.Decode(s, tuple)
		if got := c.Encode(tuple); got != s {
			t.Fatalf("round trip %d → %v → %d", s, tuple, got)
		}
	}
}

// Lemma 2: (∀i: [C_i ⇒ A_i]) ⇒ [C ⇒ A] for the products — property test.
func TestLemma2Property(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 120; iter++ {
		k := 2 + rng.Intn(2)
		as := make([]*System, k)
		cs := make([]*System, k)
		for i := range as {
			as[i] = Random(rng, "a", 2+rng.Intn(3), 1.7)
			cs[i] = RandomSub(rng, "c", as[i])
		}
		a, err := Product("A", as...)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Product("C", cs...)
		if err != nil {
			t.Fatal(err)
		}
		if r := EverywhereImplements(c, a); !r.Holds {
			t.Fatalf("iter %d: Lemma 2 violated: %v", iter, r)
		}
		if r := Implements(c, a); !r.Holds {
			t.Fatalf("iter %d: init-relative product implementation violated: %v", iter, r)
		}
	}
}

// Lemma 3: (∀i: [C_i ⇒ A_i]) ∧ (∀i: [W'_i ⇒ W_i]) ⇒ [(C ▯ W') ⇒ (A ▯ W)]
// over products — property test.
func TestLemma3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 80; iter++ {
		k := 2
		as := make([]*System, k)
		cs := make([]*System, k)
		ws := make([]*System, k)
		wps := make([]*System, k)
		for i := range as {
			as[i] = Random(rng, "a", 2+rng.Intn(3), 1.7)
			cs[i] = RandomSub(rng, "c", as[i])
			ws[i] = withInit(Random(rng, "w", as[i].NumStates(), 1.4), as[i].Init())
			wps[i] = RandomSub(rng, "w'", ws[i])
		}
		a, _ := Product("A", as...)
		c, _ := Product("C", cs...)
		w, _ := Product("W", ws...)
		wp, _ := Product("W'", wps...)
		aw, err1 := Box(a, w)
		cwp, err2 := Box(c, wp)
		if err1 != nil || err2 != nil {
			t.Fatalf("iter %d: box errors %v %v", iter, err1, err2)
		}
		if r := EverywhereImplements(cwp, aw); !r.Holds {
			t.Fatalf("iter %d: Lemma 3 violated: %v", iter, r)
		}
	}
}

// Theorem 4 (stabilization via local everywhere specifications): with the
// Lemma 3 premises plus A ▯ W stabilizing to A, C ▯ W' is stabilizing to A.
func TestTheorem4Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tested := 0
	for iter := 0; iter < 600 && tested < 25; iter++ {
		k := 2
		as := make([]*System, k)
		cs := make([]*System, k)
		ws := make([]*System, k)
		wps := make([]*System, k)
		for i := range as {
			as[i] = Random(rng, "a", 2+rng.Intn(2), 1.5)
			cs[i] = RandomSub(rng, "c", as[i])
			ws[i] = withInit(Random(rng, "w", as[i].NumStates(), 1.3), as[i].Init())
			wps[i] = RandomSub(rng, "w'", ws[i])
		}
		a, _ := Product("A", as...)
		c, _ := Product("C", cs...)
		w, _ := Product("W", ws...)
		wp, _ := Product("W'", wps...)
		aw, err := Box(a, w)
		if err != nil {
			continue
		}
		if ok, _ := StabilizingTo(aw, a); !ok {
			continue
		}
		cwp, err := Box(c, wp)
		if err != nil {
			continue
		}
		tested++
		if ok, l := StabilizingTo(cwp, a); !ok {
			t.Fatalf("iter %d: Theorem 4 violated: %v", iter, l)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d qualifying samples", tested)
	}
}
