package graybox

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBuildValidatesTotality(t *testing.T) {
	_, err := NewBuilder("x", 2).AddTransition(0, 1).SetInit(0).Build()
	if !errors.Is(err, ErrNotTotal) {
		t.Errorf("Build = %v, want ErrNotTotal", err)
	}
}

func TestBuildValidatesInit(t *testing.T) {
	_, err := NewBuilder("x", 1).AddTransition(0, 0).Build()
	if !errors.Is(err, ErrNoInit) {
		t.Errorf("Build = %v, want ErrNoInit", err)
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := NewBuilder("x", 1).AddTransition(0, 5).SetInit(0).Build(); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewBuilder("x", 1).AddTransition(5, 0).SetInit(0).Build(); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := NewBuilder("x", 1).AddTransition(0, 0).SetInit(7).Build(); err == nil {
		t.Error("out-of-range init accepted")
	}
}

func TestTotalize(t *testing.T) {
	s := NewBuilder("x", 3).AddTransition(0, 1).SetInit(0).Totalize().MustBuild()
	if !s.HasTransition(1, 1) || !s.HasTransition(2, 2) {
		t.Error("Totalize did not add self-loops")
	}
	if s.HasTransition(0, 0) {
		t.Error("Totalize added a self-loop to a state with successors")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := NewBuilder("sys", 3).
		AddChain(0, 1, 2).
		AddTransition(2, 2).
		SetInit(0, 1).
		MustBuild()
	if s.Name() != "sys" || s.NumStates() != 3 {
		t.Error("Name/NumStates wrong")
	}
	if got := s.Init(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Init = %v", got)
	}
	if !s.IsInit(1) || s.IsInit(2) {
		t.Error("IsInit wrong")
	}
	if !s.HasTransition(0, 1) || s.HasTransition(1, 0) {
		t.Error("HasTransition wrong")
	}
	if got := s.Successors(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Successors(1) = %v", got)
	}
	if s.NumTransitions() != 3 {
		t.Errorf("NumTransitions = %d, want 3", s.NumTransitions())
	}
	tr := s.Transitions()
	if len(tr) != 3 || tr[0] != [2]int{0, 1} {
		t.Errorf("Transitions = %v", tr)
	}
}

func TestInitReturnsCopy(t *testing.T) {
	s := NewBuilder("x", 1).AddTransition(0, 0).SetInit(0).MustBuild()
	in := s.Init()
	in[0] = 99
	if got := s.Init()[0]; got != 0 {
		t.Errorf("Init aliased internal storage: %d", got)
	}
}

func TestReachableAndLegitimate(t *testing.T) {
	// 0→1→2, 3 isolated (self-loop), init {0}.
	s := NewBuilder("x", 4).
		AddChain(0, 1, 2).
		AddTransition(2, 2).
		AddTransition(3, 3).
		SetInit(0).
		MustBuild()
	legit := s.Legitimate()
	want := []bool{true, true, true, false}
	for i := range want {
		if legit[i] != want[i] {
			t.Errorf("Legitimate[%d] = %v, want %v", i, legit[i], want[i])
		}
	}
	r := s.Reachable([]int{3})
	if !r[3] || r[0] {
		t.Errorf("Reachable from 3 = %v", r)
	}
	// Out-of-range seeds are ignored.
	r = s.Reachable([]int{-1, 99})
	for i, v := range r {
		if v {
			t.Errorf("Reachable from invalid seeds marked %d", i)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid system")
		}
	}()
	NewBuilder("bad", 1).MustBuild()
}

func TestAddChainDuplicatesIgnored(t *testing.T) {
	s := NewBuilder("x", 2).
		AddChain(0, 1, 0).
		AddTransition(0, 1). // duplicate
		SetInit(0).
		MustBuild()
	if s.NumTransitions() != 2 {
		t.Errorf("NumTransitions = %d, want 2", s.NumTransitions())
	}
}

func TestRandomIsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		s := Random(rng, "r", 1+rng.Intn(30), 1+rng.Float64()*3)
		for u := 0; u < s.NumStates(); u++ {
			if len(s.Successors(u)) == 0 {
				t.Fatalf("Random produced non-total system at state %d", u)
			}
		}
		if len(s.Init()) == 0 {
			t.Fatal("Random produced system without init")
		}
	}
}

func TestRandomSubIsEverywhereImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := Random(rng, "a", 2+rng.Intn(20), 2.5)
		c := RandomSub(rng, "c", a)
		if r := EverywhereImplements(c, a); !r.Holds {
			t.Fatalf("RandomSub not an everywhere implementation: %v", r)
		}
		if r := Implements(c, a); !r.Holds {
			t.Fatalf("RandomSub not an implementation: %v", r)
		}
	}
}
