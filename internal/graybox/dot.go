package graybox

import (
	"fmt"
	"io"
)

// WriteDOT renders the system as a Graphviz digraph: initial states are
// drawn as double circles, legitimate (init-reachable) states are filled,
// and when highlight is non-nil its transitions are drawn bold red —
// callers pass a Lasso's cycle edges to visualize a stabilization
// counterexample.
func (s *System) WriteDOT(w io.Writer, highlight map[[2]int]bool) error {
	legit := s.Legitimate()
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", s.name); err != nil {
		return err
	}
	for u := 0; u < s.n; u++ {
		shape := "circle"
		if s.IsInit(u) {
			shape = "doublecircle"
		}
		style := ""
		if legit[u] {
			style = ` style=filled fillcolor="#e8f4e8"`
		}
		if _, err := fmt.Fprintf(w, "  %d [shape=%s%s];\n", u, shape, style); err != nil {
			return err
		}
	}
	for _, e := range s.Transitions() {
		attr := ""
		if highlight[[2]int{e[0], e[1]}] {
			attr = ` [color=red penwidth=2]`
		}
		if _, err := fmt.Fprintf(w, "  %d -> %d%s;\n", e[0], e[1], attr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Edges returns the lasso's transitions (cycle steps plus the closing bad
// edge) as a set suitable for WriteDOT's highlight parameter.
func (l *Lasso) Edges() map[[2]int]bool {
	out := make(map[[2]int]bool, len(l.Cycle)+1)
	for i := 0; i+1 < len(l.Cycle); i++ {
		out[[2]int{l.Cycle[i], l.Cycle[i+1]}] = true
	}
	out[l.BadEdge] = true
	return out
}
