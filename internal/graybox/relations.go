package graybox

import "fmt"

// ImplementsResult reports the outcome of an implements query, carrying a
// counterexample when the relation fails to hold.
type ImplementsResult struct {
	// Holds is true when the relation holds.
	Holds bool
	// BadInit, when ≥0, is an initial state of C that is not initial in A.
	BadInit int
	// BadEdge, when non-nil, is a transition of C absent from A (reachable
	// from init(C) for the init-relative query).
	BadEdge *[2]int
}

func (r ImplementsResult) String() string {
	switch {
	case r.Holds:
		return "holds"
	case r.BadInit >= 0:
		return fmt.Sprintf("fails: initial state %d of C not initial in A", r.BadInit)
	case r.BadEdge != nil:
		return fmt.Sprintf("fails: transition %d->%d of C absent from A", r.BadEdge[0], r.BadEdge[1])
	default:
		return "fails"
	}
}

// Implements decides [C ⇒ A]_init: every computation of C from an initial
// state of C is a computation of A from an initial state of A. Both systems
// must share the state space (states are identified by index, as in the
// paper's Figure 1 where A and C range over the same Σ).
func Implements(c, a *System) ImplementsResult {
	res := ImplementsResult{BadInit: -1}
	for _, u := range c.init {
		if !a.IsInit(u) {
			res.BadInit = u
			return res
		}
	}
	reach := c.Reachable(c.init)
	for u := 0; u < c.n; u++ {
		if !reach[u] {
			continue
		}
		for _, v := range c.adj[u] {
			if !a.HasTransition(u, v) {
				e := [2]int{u, v}
				res.BadEdge = &e
				return res
			}
		}
	}
	res.Holds = true
	return res
}

// EverywhereImplements decides [C ⇒ A]: every computation of C (from any
// state) is a computation of A. For transition systems this is transition
// containment: trans(C) ⊆ trans(A).
func EverywhereImplements(c, a *System) ImplementsResult {
	res := ImplementsResult{BadInit: -1}
	for u := 0; u < c.n; u++ {
		for _, v := range c.adj[u] {
			if !a.HasTransition(u, v) {
				e := [2]int{u, v}
				res.BadEdge = &e
				return res
			}
		}
	}
	res.Holds = true
	return res
}

// Box returns C ▯ W: the system whose computation set is the smallest
// fusion-closed set containing the computations of C and of W, i.e. the
// path set of the union transition relation, with the common initial states.
//
// Both systems must share the state space; Box returns an error if the
// sizes differ or the composed system has no common initial state (the
// paper's ▯ requires common initial states to exist for initialized
// computations to be defined; every state still has computations since the
// union of total relations is total).
func Box(c, w *System) (*System, error) {
	if c.n != w.n {
		return nil, fmt.Errorf("graybox: box over mismatched state spaces (%d vs %d)", c.n, w.n)
	}
	b := NewBuilder(c.name+" [] "+w.name, c.n)
	for u := 0; u < c.n; u++ {
		for _, v := range c.adj[u] {
			b.AddTransition(u, v)
		}
		for _, v := range w.adj[u] {
			b.AddTransition(u, v)
		}
	}
	for _, u := range c.init {
		if w.IsInit(u) {
			b.SetInit(u)
		}
	}
	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graybox: box: %w", err)
	}
	return sys, nil
}

// Lasso is a counterexample to stabilization: an infinite computation of C
// shaped as a stem followed by a cycle repeated forever, which never settles
// into a legitimate suffix of A.
type Lasso struct {
	// Cycle is the repeated state sequence; Cycle[len-1] → Cycle[0] closes
	// it. At least one transition along the cycle is "bad": not an
	// A-transition within A's legitimate set.
	Cycle []int
	// BadEdge is one offending transition on the cycle.
	BadEdge [2]int
}

func (l *Lasso) String() string {
	return fmt.Sprintf("lasso cycle %v with bad transition %d->%d", l.Cycle, l.BadEdge[0], l.BadEdge[1])
}

// StabilizingTo decides whether C is stabilizing to A: every computation of
// C has a suffix that is a suffix of some computation of A starting at an
// initial state of A. When it fails, a Lasso counterexample is returned.
//
// Method: let L = Reach_A(init(A)). A transition (u,v) of C is good iff it
// is an A-transition with u,v ∈ L. A computation stabilizes iff it
// eventually uses only good transitions; C fails to stabilize iff some
// cycle of C contains a bad transition (looping that cycle forever uses bad
// transitions infinitely often). Cycles through a bad edge (u,v) exist iff
// v reaches u in C.
func StabilizingTo(c, a *System) (bool, *Lasso) {
	if c.n != a.n {
		// Disjoint state spaces: no computation of C is ever an
		// A-suffix; report a trivial lasso on C's first cycle.
		// (Callers compare systems over a shared Σ; this is defensive.)
		return false, &Lasso{Cycle: []int{0}, BadEdge: [2]int{0, c.adj[0][0]}}
	}
	legit := a.Legitimate()
	good := func(u, v int) bool {
		return legit[u] && legit[v] && a.HasTransition(u, v)
	}
	// SCC decomposition of C (Tarjan, iterative).
	scc := tarjanSCC(c)
	for u := 0; u < c.n; u++ {
		for _, v := range c.adj[u] {
			if good(u, v) {
				continue
			}
			// Bad edge (u,v) lies on a cycle iff v can reach u.
			if u == v || (scc[u] == scc[v]) {
				return false, &Lasso{Cycle: cyclePath(c, v, u), BadEdge: [2]int{u, v}}
			}
		}
	}
	return true, nil
}

// SelfStabilizing reports whether A is stabilizing to A (every computation
// converges to a legitimate suffix of A itself).
func SelfStabilizing(a *System) (bool, *Lasso) { return StabilizingTo(a, a) }

// tarjanSCC returns the SCC id of every state, using an iterative Tarjan's
// algorithm (no recursion, safe for large models).
func tarjanSCC(s *System) []int {
	const unvisited = -1
	n := s.n
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		stack []int // Tarjan stack
		next  = 0   // next DFS index
		nComp = 0
		callU []int // DFS call stack: state
		callI []int // DFS call stack: next child position
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callU = append(callU[:0], root)
		callI = append(callI[:0], 0)
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(callU) > 0 {
			u := callU[len(callU)-1]
			i := callI[len(callI)-1]
			if i < len(s.adj[u]) {
				callI[len(callI)-1]++
				v := s.adj[u][i]
				if index[v] == unvisited {
					index[v], low[v] = next, next
					next++
					stack = append(stack, v)
					onStack[v] = true
					callU = append(callU, v)
					callI = append(callI, 0)
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// Post-order: pop u.
			callU = callU[:len(callU)-1]
			callI = callI[:len(callI)-1]
			if len(callU) > 0 {
				parent := callU[len(callU)-1]
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
			if low[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == u {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// cyclePath returns a state sequence from src to dst through C's transitions
// (BFS shortest path); appending the edge dst→src's bad edge closes the
// counterexample cycle. src and dst are in the same SCC, so a path exists;
// if src == dst the cycle is the single state.
func cyclePath(c *System, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, c.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range c.adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] == -1 {
		// Unreachable despite same SCC — cannot happen; degrade to the
		// endpoints so callers still get a diagnostic.
		return []int{src, dst}
	}
	var rev []int
	for u := dst; u != src; u = prev[u] {
		rev = append(rev, u)
	}
	rev = append(rev, src)
	path := make([]int, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}
