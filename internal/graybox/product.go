package graybox

import "fmt"

// Product returns the asynchronous (interleaving) product of local systems:
// the formal meaning of the paper's (▯ i :: S_i) for a distributed system
// whose process i has local state space Σ_i. A product state is a tuple of
// component states (encoded in mixed radix, component 0 least significant);
// each transition changes exactly one component according to that
// component's local relation. Initial states are the tuples of component
// initial states.
//
// Local everywhere specifications are exactly the systems expressible as
// such products (§2.1): Lemma 2 — componentwise everywhere implementation
// implies everywhere implementation of the products — is a theorem about
// this construction, property-tested in product_test.go.
//
// The product has Π|Σ_i| states; callers keep components small (it exists
// for formal checking, not for simulation — internal/sim plays that role).
func Product(name string, parts ...*System) (*System, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("graybox: product of no systems")
	}
	total := 1
	for _, p := range parts {
		if p.NumStates() <= 0 {
			return nil, fmt.Errorf("graybox: product component %q has no states", p.Name())
		}
		if total > 1<<20/p.NumStates() {
			return nil, fmt.Errorf("graybox: product exceeds 2^20 states")
		}
		total *= p.NumStates()
	}
	enc := NewTupleCodec(parts)
	b := NewBuilder(name, total)

	tuple := make([]int, len(parts))
	for s := 0; s < total; s++ {
		enc.Decode(s, tuple)
		for i, p := range parts {
			orig := tuple[i]
			for _, v := range p.Successors(orig) {
				tuple[i] = v
				b.AddTransition(s, enc.Encode(tuple))
			}
			tuple[i] = orig
		}
	}

	// Initial states: the cartesian product of component inits.
	inits := []int{0}
	mult := 1
	for _, p := range parts {
		var next []int
		for _, base := range inits {
			for _, u := range p.Init() {
				next = append(next, base+u*mult)
			}
		}
		inits = next
		mult *= p.NumStates()
	}
	b.SetInit(inits...)
	return b.Build()
}

// TupleCodec translates between product states and component-state tuples
// for a fixed component list (mixed-radix encoding, component 0 least
// significant).
type TupleCodec struct {
	sizes []int
}

// NewTupleCodec returns the codec for the given components.
func NewTupleCodec(parts []*System) *TupleCodec {
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = p.NumStates()
	}
	return &TupleCodec{sizes: sizes}
}

// Encode maps a component-state tuple to the product state.
func (c *TupleCodec) Encode(tuple []int) int {
	s, mult := 0, 1
	for i, v := range tuple {
		s += v * mult
		mult *= c.sizes[i]
	}
	return s
}

// Decode fills tuple with the component states of product state s.
func (c *TupleCodec) Decode(s int, tuple []int) {
	for i, size := range c.sizes {
		tuple[i] = s % size
		s /= size
	}
}

// Components returns the number of components.
func (c *TupleCodec) Components() int { return len(c.sizes) }
