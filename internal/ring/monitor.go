package ring

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/spec"
)

// Snapshot is one observed global state of the ring, consumed by monitors.
type Snapshot struct {
	// Time is the tick of the observation.
	Time int64
	// Live is the live-token count (see Sim.LiveTokens).
	Live int
	// Holder is the unique holder id, or -1 (none, or several).
	Holder int
	// Seqs[i] is process i's seq_i.
	Seqs []uint64
}

// Snap captures the current snapshot.
func (s *Sim) Snap() Snapshot {
	snap := Snapshot{
		Time:   s.Now(),
		Live:   s.LiveTokens(),
		Holder: s.Holder(),
		Seqs:   make([]uint64, s.cfg.N),
	}
	for i, nd := range s.nodes {
		snap.Seqs[i] = nd.Seq()
	}
	return snap
}

// SetObserver installs a per-tick observer (nil to remove).
func (s *Sim) SetObserver(o func(*Sim)) { s.observer = o }

// Monitors checks a ring run against TCspec's global consequences: exactly
// one live token (the ME1 analogue), monotone sequence numbers (Monotone
// Spec), and per-process circulation (each process holds the token again —
// the liveness the regenerator must restore).
type Monitors struct {
	n     int
	suite *spec.Suite[Snapshot]
	// lastHeld[i] is the last tick process i was observed holding (-1:
	// never). Circulation is a perpetual liveness property, so starvation
	// is judged by recency rather than by open obligations (which any
	// finite horizon leaves mid-lap).
	lastHeld   []int64
	lastTime   int64
	violations []int64 // times of safety violations
	lastViol   int64
}

// NewMonitors returns monitors for an n-process ring.
func NewMonitors(n int) *Monitors {
	m := &Monitors{
		n:        n,
		suite:    spec.NewSuite[Snapshot](),
		lastHeld: make([]int64, n),
		lastViol: -1,
	}
	for i := range m.lastHeld {
		m.lastHeld[i] = -1
	}

	// Exactly one live token, checked per state (non-latching): the
	// convergence measure is the last time this fails.
	m.suite.Add(spec.NewInvariant("single-live-token", func(s Snapshot) bool {
		return s.Live == 1
	}))

	// Monotone Spec: seq_i never decreases.
	for i := 0; i < n; i++ {
		i := i
		m.suite.Add(&monotoneSeq{name: fmt.Sprintf("seq.%d", i), i: i})
	}
	return m
}

// Observe feeds one snapshot.
func (m *Monitors) Observe(s Snapshot) {
	m.lastTime = s.Time
	if s.Holder >= 0 && s.Holder < m.n {
		m.lastHeld[s.Holder] = s.Time
	}
	before := len(m.suite.Violations())
	m.suite.Observe(s)
	for range m.suite.Violations()[before:] {
		m.violations = append(m.violations, s.Time)
		if s.Time > m.lastViol {
			m.lastViol = s.Time
		}
	}
}

// AsObserver adapts the monitors to a Sim observer.
func (m *Monitors) AsObserver() func(*Sim) {
	return func(s *Sim) { m.Observe(s.Snap()) }
}

// LastViolationTime returns the last safety-violation tick, or -1.
func (m *Monitors) LastViolationTime() int64 { return m.lastViol }

// Violations returns the number of safety violations observed.
func (m *Monitors) Violations() int { return len(m.violations) }

// StarvedProcesses returns ids that have not held the token within the
// final window ticks of the observed run — the circulation-liveness
// verdict for a perpetual system. Pick window comfortably above one ring
// lap (n hops × max delay × hold time).
func (m *Monitors) StarvedProcesses(window int64) []int {
	var out []int
	for i, last := range m.lastHeld {
		if last < m.lastTime-window {
			out = append(out, i)
		}
	}
	return out
}

// LastHeld returns the last tick process i was observed holding, or -1.
func (m *Monitors) LastHeld(i int) int64 { return m.lastHeld[i] }

// monotoneSeq checks that seq_i never decreases across snapshots.
type monotoneSeq struct {
	name string
	i    int
	have bool
	last uint64
}

func (ms *monotoneSeq) Name() string { return ms.name }
func (ms *monotoneSeq) Pending() int { return 0 }

func (ms *monotoneSeq) Observe(s Snapshot) *spec.Violation {
	cur := s.Seqs[ms.i]
	defer func() { ms.last, ms.have = cur, true }()
	if ms.have && cur < ms.last {
		return &spec.Violation{Op: "monotone-seq", Detail: fmt.Sprintf(
			"%s: seq regressed %d → %d", ms.name, ms.last, cur)}
	}
	return nil
}

var _ spec.Monitor[Snapshot] = (*monotoneSeq)(nil)
