package ring

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

// The ring's typed engine event kinds. The dispatch switch routes every
// other kind to the event's closure, but each declared kind needs its arm.
//
//gblint:kindset ring-ev
const (
	// kindDeliver pops the head of link a→b into node b.
	kindDeliver uint8 = iota + 1
	// kindTick advances the per-tick machinery: node forwarding, the
	// regenerator wrapper, dead-tick accounting, the observer.
	kindTick
)

// SimConfig parameterizes a ring simulation.
type SimConfig struct {
	// N is the ring size (≥ 2).
	N int
	// Seed drives link delays.
	Seed int64
	// NewNode constructs each process (required); see NewEager, NewLazy.
	NewNode func(id, n int) Node
	// MinDelay/MaxDelay bound per-hop link delay in ticks. Defaults 1/3.
	MinDelay, MaxDelay int64
	// WrapperDelta, when > 0, attaches the Regenerator wrapper to
	// process 0 with that timeout.
	WrapperDelta int
	// Obs, when non-nil, receives ring metrics and trace events alongside
	// the in-struct Metrics (which stay authoritative for existing callers).
	Obs *obs.Obs
}

// Metrics accumulates ring counters.
type Metrics struct {
	// Accepts[i] counts accepted token deliveries at process i.
	Accepts []int
	// Discards counts deliveries rejected by Accept Spec (stale tokens).
	Discards int
	// Regenerations counts wrapper-created tokens.
	Regenerations int
	// DeadTicks counts ticks with no live token anywhere.
	DeadTicks int64
}

// Sim is a deterministic ring simulator on the shared discrete-event
// engine: token deliveries are typed engine events due after sampled link
// delays, and the per-tick machinery (forwarding, the wrapper, dead-tick
// accounting) is a recurring tick event. Construct with NewSim.
type Sim struct {
	cfg      SimConfig
	core     *engine.Core
	mesh     *engine.Mesh[Token]
	rng      *rand.Rand // the core's master stream, cached
	nodes    []Node
	eps      []channel.Endpoint // the n ring links i → (i+1) mod n
	wrapper  *Regenerator
	metrics  Metrics
	ins      ringInstruments
	observer func(*Sim)
}

// ringInstruments mirrors Metrics into an obs registry; all fields are nil
// (no-op) when the simulation runs without observability.
type ringInstruments struct {
	accepts   *obs.Counter
	discards  *obs.Counter
	regens    *obs.Counter
	deadTicks *obs.Counter
	sends     *obs.Counter
	time      *obs.Gauge
	trace     *obs.Trace
}

func newRingInstruments(o *obs.Obs) ringInstruments {
	if o == nil {
		return ringInstruments{}
	}
	r := o.Registry()
	return ringInstruments{
		accepts:   r.Counter("ring_accepts_total", "accepted token deliveries"),
		discards:  r.Counter("ring_discards_total", "deliveries rejected by Accept Spec"),
		regens:    r.Counter("ring_regenerations_total", "wrapper-created tokens"),
		deadTicks: r.Counter("ring_dead_ticks_total", "ticks with no live token"),
		sends:     r.Counter("ring_sends_total", "tokens put on links"),
		time:      r.Gauge("ring_time", "current tick"),
		trace:     o.Tracer(),
	}
}

// NewSim builds a ring simulation. It panics on an invalid configuration
// (programming error).
func NewSim(cfg SimConfig) *Sim {
	if cfg.N < 2 || cfg.NewNode == nil {
		panic("ring: SimConfig.N ≥ 2 and NewNode are required")
	}
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 1, 3
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	core := engine.New(cfg.Seed)
	s := &Sim{
		cfg:   cfg,
		core:  core,
		mesh:  engine.NewMesh[Token](core, cfg.N, cfg.MinDelay, cfg.MaxDelay, kindDeliver),
		rng:   core.RNG(),
		nodes: make([]Node, cfg.N),
		eps:   make([]channel.Endpoint, cfg.N),
		metrics: Metrics{
			Accepts: make([]int, cfg.N),
		},
	}
	core.SetHandler(s.dispatch)
	s.ins = newRingInstruments(cfg.Obs)
	for i := range s.nodes {
		s.nodes[i] = cfg.NewNode(i, cfg.N)
		s.eps[i] = channel.Endpoint{Src: i, Dst: (i + 1) % cfg.N}
	}
	if cfg.WrapperDelta > 0 {
		s.wrapper = NewRegenerator(cfg.WrapperDelta)
	}
	// Seed the ring: process 0 starts with the first token.
	s.nodes[0].Accept(Token{Seq: 1})
	s.metrics.Accepts[0]++
	s.ins.accepts.Inc()
	// The first tick fires at t=1; each tick re-arms the next, after its
	// sends, so every delivery due at t+1 precedes tick t+1 in seq order —
	// deliveries before node steps within a tick, as the ring's round
	// structure requires.
	core.Schedule(1, kindTick, 0, 0)
	return s
}

// Now returns the current tick.
func (s *Sim) Now() int64 { return s.core.Now() }

// Node returns process i.
func (s *Sim) Node(i int) Node { return s.nodes[i] }

// Metrics returns the accumulated counters.
func (s *Sim) Metrics() *Metrics { return &s.metrics }

// Wrapper returns the attached Regenerator (nil when unwrapped).
func (s *Sim) Wrapper() *Regenerator { return s.wrapper }

// send puts a token on link i with a sampled delay.
//
//gblint:hotpath
func (s *Sim) send(i int, t Token) {
	dst := (i + 1) % s.cfg.N
	s.mesh.Send(i, dst, t)
	s.ins.sends.Inc()
	if s.ins.trace != nil {
		s.ins.trace.Emit(obs.Event{Time: s.Now(), Kind: obs.EvSend, A: i, B: dst, N: int(t.Seq)})
	}
}

// deliver pops the head of link src→dst into node dst.
//
//gblint:hotpath
func (s *Sim) deliver(src, dst int) {
	t, ok := s.mesh.Recv(channel.Endpoint{Src: src, Dst: dst})
	if !ok {
		return // lost to a fault; the delivery opportunity passes
	}
	if s.nodes[dst].Accept(t) {
		s.metrics.Accepts[dst]++
		s.ins.accepts.Inc()
		if s.ins.trace != nil {
			s.ins.trace.Emit(obs.Event{Time: s.Now(), Kind: obs.EvDeliver, A: src, B: dst, N: int(t.Seq)})
		}
	} else {
		s.metrics.Discards++
		s.ins.discards.Inc()
		if s.ins.trace != nil {
			s.ins.trace.Emit(obs.Event{Time: s.Now(), Kind: obs.EvDrop, A: src, B: dst, N: int(t.Seq), Detail: "stale"})
		}
	}
}

// tick runs the per-tick machinery: node forwarding in index order, the
// wrapper at process 0, dead-tick accounting, and the observer. It re-arms
// the next tick last, so deliveries at t+1 outrank it in seq order.
//
//gblint:hotpath
func (s *Sim) tick() {
	now := s.Now()
	for i, nd := range s.nodes {
		if t := nd.Tick(); t != nil {
			s.send(i, *t)
		}
	}
	// Wrapper at process 0.
	if s.wrapper != nil {
		if t := s.wrapper.Observe(s.nodes[0]); t != nil {
			s.metrics.Regenerations++
			s.ins.regens.Inc()
			if s.ins.trace != nil {
				s.ins.trace.Emit(obs.Event{Time: now, Kind: obs.EvWrapperFire, A: 0, B: -1, N: int(t.Seq), Detail: "regenerate"})
			}
			if s.nodes[0].Accept(*t) {
				s.metrics.Accepts[0]++
				s.ins.accepts.Inc()
			}
		}
	}
	if s.LiveTokens() == 0 {
		s.metrics.DeadTicks++
		s.ins.deadTicks.Inc()
	}
	s.ins.time.Set(now)
	if s.observer != nil {
		s.observer(s)
	}
	s.core.Schedule(1, kindTick, 0, 0)
}

// dispatch executes one engine event record.
//
//gblint:hotpath
func (s *Sim) dispatch(ev *engine.Event) {
	switch ev.Kind {
	case kindDeliver:
		s.deliver(int(ev.A), int(ev.B))
	case kindTick:
		s.tick()
	default:
		ev.Call()
	}
}

// Tick advances the simulation one tick: deliver due tokens, tick nodes,
// run the wrapper.
func (s *Sim) Tick() { s.core.Run(s.Now() + 1) }

// Run advances the simulation by ticks ticks.
func (s *Sim) Run(ticks int64) { s.core.Run(s.Now() + ticks) }

// LiveTokens counts tokens that still matter: processes currently holding,
// plus in-flight tokens that would be accepted at their destination today.
func (s *Sim) LiveTokens() int {
	live := 0
	for _, nd := range s.nodes {
		if nd.Holding() {
			live++
		}
	}
	for _, ep := range s.eps {
		q := s.mesh.Net().Chan(ep.Src, ep.Dst)
		for k := 0; k < q.Len(); k++ {
			if q.At(k).Seq > s.nodes[ep.Dst].Seq() {
				live++
			}
		}
	}
	return live
}

// Holder returns the id of the (unique) holding process, or -1 when none
// or several hold.
func (s *Sim) Holder() int {
	holder := -1
	for i, nd := range s.nodes {
		if nd.Holding() {
			if holder >= 0 {
				return -1
			}
			holder = i
		}
	}
	return holder
}
