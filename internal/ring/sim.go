package ring

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

// inflight is one token travelling a link, due at a tick.
type inflight struct {
	tok Token
	due int64
}

// SimConfig parameterizes a ring simulation.
type SimConfig struct {
	// N is the ring size (≥ 2).
	N int
	// Seed drives link delays.
	Seed int64
	// NewNode constructs each process (required); see NewEager, NewLazy.
	NewNode func(id, n int) Node
	// MinDelay/MaxDelay bound per-hop link delay in ticks. Defaults 1/3.
	MinDelay, MaxDelay int64
	// WrapperDelta, when > 0, attaches the Regenerator wrapper to
	// process 0 with that timeout.
	WrapperDelta int
	// Obs, when non-nil, receives ring metrics and trace events alongside
	// the in-struct Metrics (which stay authoritative for existing callers).
	Obs *obs.Obs
}

// Metrics accumulates ring counters.
type Metrics struct {
	// Accepts[i] counts accepted token deliveries at process i.
	Accepts []int
	// Discards counts deliveries rejected by Accept Spec (stale tokens).
	Discards int
	// Regenerations counts wrapper-created tokens.
	Regenerations int
	// DeadTicks counts ticks with no live token anywhere.
	DeadTicks int64
}

// Sim is a deterministic tick-driven ring simulator. Construct with NewSim.
type Sim struct {
	cfg      SimConfig
	rng      *rand.Rand
	now      int64
	nodes    []Node
	links    []channel.FIFO[inflight] // links[i]: i → (i+1) mod n
	wrapper  *Regenerator
	metrics  Metrics
	ins      ringInstruments
	observer func(*Sim)
}

// ringInstruments mirrors Metrics into an obs registry; all fields are nil
// (no-op) when the simulation runs without observability.
type ringInstruments struct {
	accepts   *obs.Counter
	discards  *obs.Counter
	regens    *obs.Counter
	deadTicks *obs.Counter
	sends     *obs.Counter
	time      *obs.Gauge
	trace     *obs.Trace
}

func newRingInstruments(o *obs.Obs) ringInstruments {
	if o == nil {
		return ringInstruments{}
	}
	r := o.Registry()
	return ringInstruments{
		accepts:   r.Counter("ring_accepts_total", "accepted token deliveries"),
		discards:  r.Counter("ring_discards_total", "deliveries rejected by Accept Spec"),
		regens:    r.Counter("ring_regenerations_total", "wrapper-created tokens"),
		deadTicks: r.Counter("ring_dead_ticks_total", "ticks with no live token"),
		sends:     r.Counter("ring_sends_total", "tokens put on links"),
		time:      r.Gauge("ring_time", "current tick"),
		trace:     o.Tracer(),
	}
}

// NewSim builds a ring simulation. It panics on an invalid configuration
// (programming error).
func NewSim(cfg SimConfig) *Sim {
	if cfg.N < 2 || cfg.NewNode == nil {
		panic("ring: SimConfig.N ≥ 2 and NewNode are required")
	}
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 1, 3
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	s := &Sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make([]Node, cfg.N),
		links: make([]channel.FIFO[inflight], cfg.N),
		metrics: Metrics{
			Accepts: make([]int, cfg.N),
		},
	}
	s.ins = newRingInstruments(cfg.Obs)
	for i := range s.nodes {
		s.nodes[i] = cfg.NewNode(i, cfg.N)
	}
	if cfg.WrapperDelta > 0 {
		s.wrapper = NewRegenerator(cfg.WrapperDelta)
	}
	// Seed the ring: process 0 starts with the first token.
	s.nodes[0].Accept(Token{Seq: 1})
	s.metrics.Accepts[0]++
	s.ins.accepts.Inc()
	return s
}

// Now returns the current tick.
func (s *Sim) Now() int64 { return s.now }

// Node returns process i.
func (s *Sim) Node(i int) Node { return s.nodes[i] }

// Metrics returns the accumulated counters.
func (s *Sim) Metrics() *Metrics { return &s.metrics }

// Wrapper returns the attached Regenerator (nil when unwrapped).
func (s *Sim) Wrapper() *Regenerator { return s.wrapper }

// send puts a token on link i with a sampled delay.
func (s *Sim) send(i int, t Token) {
	delay := s.cfg.MinDelay + s.rng.Int63n(s.cfg.MaxDelay-s.cfg.MinDelay+1)
	s.links[i].Send(inflight{tok: t, due: s.now + delay})
	s.ins.sends.Inc()
	if s.ins.trace != nil {
		s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvSend, A: i, B: (i + 1) % s.cfg.N, N: int(t.Seq)})
	}
}

// Tick advances the simulation one tick: deliver due tokens, tick nodes,
// run the wrapper.
func (s *Sim) Tick() {
	s.now++
	// Deliveries: pop link heads that are due (FIFO: later-queued tokens
	// wait even if their delay elapsed).
	for i := 0; i < s.cfg.N; i++ {
		dst := (i + 1) % s.cfg.N
		for {
			head, ok := s.links[i].Peek()
			if !ok || head.due > s.now {
				break
			}
			s.links[i].Recv()
			if s.nodes[dst].Accept(head.tok) {
				s.metrics.Accepts[dst]++
				s.ins.accepts.Inc()
				if s.ins.trace != nil {
					s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvDeliver, A: i, B: dst, N: int(head.tok.Seq)})
				}
			} else {
				s.metrics.Discards++
				s.ins.discards.Inc()
				if s.ins.trace != nil {
					s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvDrop, A: i, B: dst, N: int(head.tok.Seq), Detail: "stale"})
				}
			}
		}
	}
	// Node steps: forwarding.
	for i, nd := range s.nodes {
		if t := nd.Tick(); t != nil {
			s.send(i, *t)
		}
	}
	// Wrapper at process 0.
	if s.wrapper != nil {
		if t := s.wrapper.Observe(s.nodes[0]); t != nil {
			s.metrics.Regenerations++
			s.ins.regens.Inc()
			if s.ins.trace != nil {
				s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvWrapperFire, A: 0, B: -1, N: int(t.Seq), Detail: "regenerate"})
			}
			if s.nodes[0].Accept(*t) {
				s.metrics.Accepts[0]++
				s.ins.accepts.Inc()
			}
		}
	}
	if s.LiveTokens() == 0 {
		s.metrics.DeadTicks++
		s.ins.deadTicks.Inc()
	}
	s.ins.time.Set(s.now)
	if s.observer != nil {
		s.observer(s)
	}
}

// Run advances the simulation by ticks ticks.
func (s *Sim) Run(ticks int64) {
	for t := int64(0); t < ticks; t++ {
		s.Tick()
	}
}

// LiveTokens counts tokens that still matter: processes currently holding,
// plus in-flight tokens that would be accepted at their destination today.
func (s *Sim) LiveTokens() int {
	live := 0
	for _, nd := range s.nodes {
		if nd.Holding() {
			live++
		}
	}
	for i := 0; i < s.cfg.N; i++ {
		dst := (i + 1) % s.cfg.N
		q := &s.links[i]
		for k := 0; k < q.Len(); k++ {
			if q.At(k).tok.Seq > s.nodes[dst].Seq() {
				live++
			}
		}
	}
	return live
}

// Holder returns the id of the (unique) holding process, or -1 when none
// or several hold.
func (s *Sim) Holder() int {
	holder := -1
	for i, nd := range s.nodes {
		if nd.Holding() {
			if holder >= 0 {
				return -1
			}
			holder = i
		}
	}
	return holder
}

// --- fault injection -------------------------------------------------

// DropAllInFlight loses every in-flight token (the ring-death fault).
func (s *Sim) DropAllInFlight() {
	for i := range s.links {
		s.links[i].Clear()
	}
}

// StealToken clears every process's holding flag (state corruption killing
// the token while held).
func (s *Sim) StealToken() {
	for _, nd := range s.nodes {
		if nd.Holding() {
			nd.CorruptState(false, nd.Seq())
		}
	}
}

// DuplicateInFlight duplicates the head token of every non-empty link.
func (s *Sim) DuplicateInFlight() {
	for i := range s.links {
		if s.links[i].Len() > 0 {
			s.links[i].Duplicate(0)
		}
	}
}

// ForgeHolders corrupts k processes into believing they hold the token
// (multi-token state corruption), chosen deterministically from the seed.
func (s *Sim) ForgeHolders(k int) {
	for j := 0; j < k; j++ {
		i := s.rng.Intn(s.cfg.N)
		s.nodes[i].CorruptState(true, s.nodes[i].Seq())
	}
}

// CorruptSeq forges process i's seq to the given value (a too-high value
// blockades the ring at i until regeneration outruns it).
func (s *Sim) CorruptSeq(i int, seq uint64) {
	s.nodes[i].CorruptState(s.nodes[i].Holding(), seq)
}
