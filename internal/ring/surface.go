package ring

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

// This file implements engine.Surface for the ring, so the unified fault
// injector in internal/fault drives the same Mix into ring runs, plus the
// pre-engine ad-hoc fault methods as thin shims over that surface.

// N returns the ring size.
func (s *Sim) N() int { return s.cfg.N }

// Obs returns the run's observability bundle (nil when disabled).
func (s *Sim) Obs() *obs.Obs { return s.cfg.Obs }

// Core returns the underlying engine core.
func (s *Sim) Core() *engine.Core { return s.core }

// Channels enumerates the n ring links in deterministic order.
func (s *Sim) Channels() []channel.Endpoint { return s.eps }

// QueueLen returns the number of tokens in flight on ep.
func (s *Sim) QueueLen(ep channel.Endpoint) int {
	q := s.mesh.Net().Chan(ep.Src, ep.Dst)
	if q == nil {
		return 0
	}
	return q.Len()
}

// FaultDrop removes the i-th in-flight token on ep.
func (s *Sim) FaultDrop(ep channel.Endpoint, i int) bool {
	q := s.mesh.Net().Chan(ep.Src, ep.Dst)
	return q != nil && q.Drop(i)
}

// FaultDuplicate duplicates the i-th in-flight token on ep and gives the
// copy its own delivery opportunity after redeliver ticks.
func (s *Sim) FaultDuplicate(ep channel.Endpoint, i int, redeliver int64) bool {
	q := s.mesh.Net().Chan(ep.Src, ep.Dst)
	if q == nil || !q.Duplicate(i) {
		return false
	}
	s.mesh.ScheduleDelivery(ep, redeliver)
	return true
}

// FaultCorrupt overwrites the i-th in-flight token's sequence number with
// an arbitrary small value drawn from rng (a stale or forged token).
func (s *Sim) FaultCorrupt(ep channel.Endpoint, i int, rng *rand.Rand) bool {
	q := s.mesh.Net().Chan(ep.Src, ep.Dst)
	if q == nil {
		return false
	}
	return q.Mutate(i, func(t *Token) {
		t.Seq = uint64(rng.Int63n(int64(2 * s.cfg.N * s.cfg.N)))
	})
}

// FaultPerturb corrupts process id's local state: steal the held token,
// forge a holder, or blockade the process with a forward seq jump.
func (s *Sim) FaultPerturb(id int, rng *rand.Rand) bool {
	if id < 0 || id >= s.cfg.N {
		return false
	}
	nd := s.nodes[id]
	switch rng.Intn(3) {
	case 0:
		nd.CorruptState(false, nd.Seq())
	case 1:
		nd.CorruptState(true, nd.Seq())
	default:
		nd.CorruptState(nd.Holding(), nd.Seq()+uint64(1+rng.Intn(2*s.cfg.N)))
	}
	return true
}

// FaultFlush drops every in-flight token on ep.
func (s *Sim) FaultFlush(ep channel.Endpoint) bool {
	q := s.mesh.Net().Chan(ep.Src, ep.Dst)
	if q == nil {
		return false
	}
	q.Clear()
	return true
}

var _ engine.Surface = (*Sim)(nil)

// --- pre-engine fault shims -------------------------------------------

// DropAllInFlight loses every in-flight token (the ring-death fault).
func (s *Sim) DropAllInFlight() {
	for _, ep := range s.eps {
		s.FaultFlush(ep)
	}
}

// StealToken clears every process's holding flag (state corruption killing
// the token while held).
func (s *Sim) StealToken() {
	for _, nd := range s.nodes {
		if nd.Holding() {
			nd.CorruptState(false, nd.Seq())
		}
	}
}

// DuplicateInFlight duplicates the head token of every non-empty link.
func (s *Sim) DuplicateInFlight() {
	for _, ep := range s.eps {
		if s.QueueLen(ep) > 0 {
			s.FaultDuplicate(ep, 0, 1)
		}
	}
}

// ForgeHolders corrupts k processes into believing they hold the token
// (multi-token state corruption), chosen deterministically from the seed.
func (s *Sim) ForgeHolders(k int) {
	for j := 0; j < k; j++ {
		i := s.rng.Intn(s.cfg.N)
		s.nodes[i].CorruptState(true, s.nodes[i].Seq())
	}
}

// CorruptSeq forges process i's seq to the given value (a too-high value
// blockades the ring at i until regeneration outruns it).
func (s *Sim) CorruptSeq(i int, seq uint64) {
	s.nodes[i].CorruptState(s.nodes[i].Holding(), seq)
}
