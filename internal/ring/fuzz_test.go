package ring

import "testing"

// FuzzAcceptForward drives a node with an arbitrary interleaving of token
// deliveries and ticks, checking the TCspec invariants: seq never
// decreases, forwarded tokens always exceed the node's prior seq, and
// accepted tokens are exactly the strictly newer ones.
func FuzzAcceptForward(f *testing.F) {
	f.Add([]byte{1, 0, 5, 0, 3}, true)
	f.Add([]byte{10, 10, 10}, false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, tape []byte, eager bool) {
		var nd Node
		if eager {
			nd = NewEager(0, 4, 2)
		} else {
			nd = NewLazy(0, 4, 3, 2)
		}
		prevSeq := nd.Seq()
		for _, b := range tape {
			if b%2 == 0 {
				seq := uint64(b) / 2
				accepted := nd.Accept(Token{Seq: seq})
				if accepted != (seq > prevSeq) {
					t.Fatalf("accept(%d) = %v with seq %d", seq, accepted, prevSeq)
				}
			} else if tok := nd.Tick(); tok != nil {
				if tok.Seq <= prevSeq {
					t.Fatalf("forwarded %d not above prior seq %d", tok.Seq, prevSeq)
				}
			}
			if nd.Seq() < prevSeq {
				t.Fatalf("seq regressed: %d -> %d", prevSeq, nd.Seq())
			}
			prevSeq = nd.Seq()
		}
	})
}
