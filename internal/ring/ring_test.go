package ring

import (
	"strings"
	"testing"
	"testing/quick"
)

func eagerFactory(hold int) func(id, n int) Node {
	return func(id, n int) Node { return NewEager(id, n, hold) }
}

func lazyFactory(maxHold, serve int) func(id, n int) Node {
	return func(id, n int) Node { return NewLazy(id, n, maxHold, serve) }
}

func TestEagerAcceptSpec(t *testing.T) {
	e := NewEager(1, 3, 1)
	if !e.Accept(Token{Seq: 5}) {
		t.Fatal("fresh token rejected")
	}
	if e.Seq() != 5 || !e.Holding() {
		t.Fatalf("state after accept: seq=%d holding=%v", e.Seq(), e.Holding())
	}
	// Stale and duplicate tokens are discarded.
	if e.Accept(Token{Seq: 5}) || e.Accept(Token{Seq: 3}) {
		t.Error("stale token accepted")
	}
}

func TestEagerForwardsAfterHold(t *testing.T) {
	e := NewEager(0, 2, 3)
	e.Accept(Token{Seq: 1})
	for i := 0; i < 2; i++ {
		if tok := e.Tick(); tok != nil {
			t.Fatalf("forwarded after %d ticks, want 3", i+1)
		}
	}
	tok := e.Tick()
	if tok == nil {
		t.Fatal("never forwarded")
	}
	if tok.Seq != 2 {
		t.Errorf("forwarded seq = %d, want 2", tok.Seq)
	}
	if e.Holding() {
		t.Error("still holding after forward")
	}
	if e.Tick() != nil {
		t.Error("forwarded twice")
	}
}

func TestEagerHoldForClamped(t *testing.T) {
	e := NewEager(0, 2, 0)
	if e.HoldFor != 1 {
		t.Errorf("HoldFor = %d, want clamped to 1", e.HoldFor)
	}
}

func TestLazyForwardsImmediatelyWhenIdle(t *testing.T) {
	l := NewLazy(0, 3, 10, 2)
	l.Accept(Token{Seq: 1})
	if tok := l.Tick(); tok == nil {
		t.Fatal("idle lazy node kept the token")
	}
}

func TestLazyServesPendingThenForwards(t *testing.T) {
	l := NewLazy(0, 3, 10, 2)
	l.Request()
	l.Request()
	l.Accept(Token{Seq: 1})
	forwarded := false
	for i := 0; i < 10 && !forwarded; i++ {
		forwarded = l.Tick() != nil
	}
	if !forwarded {
		t.Fatal("budget did not force a forward")
	}
	if l.Pending() != 0 {
		t.Errorf("pending = %d after serving window, want 0", l.Pending())
	}
}

func TestLazyBudgetBoundsHold(t *testing.T) {
	l := NewLazy(0, 3, 4, 100) // service longer than budget
	l.Request()
	l.Accept(Token{Seq: 1})
	forwardedAt := -1
	for i := 1; i <= 10; i++ {
		if l.Tick() != nil {
			forwardedAt = i
			break
		}
	}
	if forwardedAt != 4 {
		t.Errorf("forwarded at tick %d, want 4 (MaxHold)", forwardedAt)
	}
}

func TestLazyClamps(t *testing.T) {
	l := NewLazy(0, 2, 0, 0)
	if l.MaxHold != 1 || l.ServeFor != 1 {
		t.Errorf("clamps failed: %d %d", l.MaxHold, l.ServeFor)
	}
}

func TestRegeneratorFiresOnlyAfterSilence(t *testing.T) {
	r := NewRegenerator(3)
	v := NewEager(0, 4, 1)
	// Holding: no fire, idle resets.
	v.Accept(Token{Seq: 1})
	if r.Observe(v) != nil {
		t.Fatal("fired while holding")
	}
	v.Tick() // forwards; seq now 2, not holding
	if r.Observe(v) != nil {
		t.Fatal("fired on first silent tick after seq change")
	}
	// Two more silent ticks: timer = 3 reached? Observe counts from the
	// tick after the seq settled.
	if r.Observe(v) != nil {
		t.Fatal("fired one tick early")
	}
	if r.Observe(v) != nil {
		t.Fatal("fired one tick early (2)")
	}
	tok := r.Observe(v)
	if tok == nil {
		t.Fatal("never fired")
	}
	// Jump by n = 4 over seq 2.
	if tok.Seq != 6 {
		t.Errorf("regenerated seq = %d, want 6", tok.Seq)
	}
	if r.Regenerations != 1 {
		t.Errorf("Regenerations = %d", r.Regenerations)
	}
	if !strings.Contains(r.String(), "δ=3") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRegeneratorDeltaClamped(t *testing.T) {
	if NewRegenerator(0).Delta != 1 {
		t.Error("delta not clamped")
	}
}

func TestFaultFreeCirculation(t *testing.T) {
	for name, factory := range map[string]func(int, int) Node{
		"eager": eagerFactory(2),
		"lazy":  lazyFactory(3, 1),
	} {
		s := NewSim(SimConfig{N: 5, Seed: 1, NewNode: factory})
		s.Run(500)
		m := s.Metrics()
		for i, acc := range m.Accepts {
			if acc == 0 {
				t.Errorf("%s: process %d never received the token", name, i)
			}
		}
		if m.Discards != 0 {
			t.Errorf("%s: %d discards in a fault-free run", name, m.Discards)
		}
		if m.DeadTicks != 0 {
			t.Errorf("%s: ring dead for %d ticks without faults", name, m.DeadTicks)
		}
		if live := s.LiveTokens(); live != 1 {
			t.Errorf("%s: %d live tokens, want exactly 1", name, live)
		}
	}
}

// The headline: token loss kills an unwrapped ring permanently; the
// graybox regenerator revives it — on BOTH implementations, unchanged.
func TestTokenLossDeadlockAndRecovery(t *testing.T) {
	for name, factory := range map[string]func(int, int) Node{
		"eager": eagerFactory(2),
		"lazy":  lazyFactory(3, 1),
	} {
		// Unwrapped: drop everything at t=50 → dead forever.
		bare := NewSim(SimConfig{N: 4, Seed: 2, NewNode: factory})
		bare.Run(50)
		bare.DropAllInFlight()
		bare.StealToken()
		before := totalAccepts(bare.Metrics())
		bare.Run(500)
		if totalAccepts(bare.Metrics()) != before {
			t.Errorf("%s: unwrapped ring made progress after token loss", name)
		}
		if bare.LiveTokens() != 0 {
			t.Errorf("%s: live tokens after loss = %d", name, bare.LiveTokens())
		}

		// Wrapped: same fault, regeneration brings it back.
		wrapped := NewSim(SimConfig{N: 4, Seed: 2, NewNode: factory, WrapperDelta: 20})
		wrapped.Run(50)
		wrapped.DropAllInFlight()
		wrapped.StealToken()
		before = totalAccepts(wrapped.Metrics())
		wrapped.Run(500)
		if totalAccepts(wrapped.Metrics()) <= before {
			t.Errorf("%s: wrapped ring made no progress after token loss", name)
		}
		if wrapped.Metrics().Regenerations == 0 {
			t.Errorf("%s: wrapper never regenerated", name)
		}
		if live := wrapped.LiveTokens(); live != 1 {
			t.Errorf("%s: live tokens after recovery = %d, want 1", name, live)
		}
	}
}

// Duplicated tokens die at the first process that has seen newer: the ring
// converges back to exactly one live token, with discards recorded.
func TestDuplicationConvergesToSingleToken(t *testing.T) {
	s := NewSim(SimConfig{N: 5, Seed: 3, NewNode: eagerFactory(1)})
	s.Run(50)
	s.DuplicateInFlight()
	s.Run(500)
	if live := s.LiveTokens(); live != 1 {
		t.Fatalf("live tokens = %d, want 1", live)
	}
}

// Forged multi-holders: Accept Spec + forwarding dedup converge back to a
// single token (the stale branches die at their next hop).
func TestForgedHoldersConverge(t *testing.T) {
	s := NewSim(SimConfig{N: 6, Seed: 4, NewNode: eagerFactory(1), WrapperDelta: 30})
	s.Run(50)
	s.ForgeHolders(3)
	s.Run(1000)
	if live := s.LiveTokens(); live != 1 {
		t.Fatalf("live tokens = %d, want 1", live)
	}
	if s.Holder() == -1 && s.LiveTokens() != 1 {
		t.Error("no unique holder or in-flight token after convergence")
	}
}

// A corrupted too-high seq blockades the ring at one process; regeneration
// sequence numbers grow past it and circulation resumes.
func TestSeqBlockadeEventuallyOutrun(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 5, NewNode: eagerFactory(1), WrapperDelta: 10})
	s.Run(30)
	s.CorruptSeq(2, s.Node(2).Seq()+40) // well ahead of current tokens
	before := s.Metrics().Accepts[3]    // process past the blockade
	s.Run(2000)
	if s.Metrics().Accepts[3] <= before {
		t.Fatal("ring never got past the seq blockade")
	}
	if s.LiveTokens() != 1 {
		t.Errorf("live tokens = %d, want 1", s.LiveTokens())
	}
}

func totalAccepts(m *Metrics) int {
	total := 0
	for _, a := range m.Accepts {
		total += a
	}
	return total
}

func TestSimPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	NewSim(SimConfig{N: 1})
}

func TestSimDeterminism(t *testing.T) {
	run := func() (int, int) {
		s := NewSim(SimConfig{N: 5, Seed: 9, NewNode: eagerFactory(2), WrapperDelta: 25})
		s.Run(100)
		s.DropAllInFlight()
		s.StealToken()
		s.Run(1000)
		return totalAccepts(s.Metrics()), s.Metrics().Regenerations
	}
	a1, r1 := run()
	a2, r2 := run()
	if a1 != a2 || r1 != r2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", a1, r1, a2, r2)
	}
}

// Property: Accept Spec keeps seq_i monotone under arbitrary token streams.
func TestSeqMonotoneProperty(t *testing.T) {
	f := func(seqs []uint64) bool {
		e := NewEager(0, 3, 1)
		l := NewLazy(1, 3, 2, 1)
		var prevE, prevL uint64
		for _, s := range seqs {
			e.Accept(Token{Seq: s % 100})
			l.Accept(Token{Seq: s % 100})
			if e.Seq() < prevE || l.Seq() < prevL {
				return false
			}
			prevE, prevL = e.Seq(), l.Seq()
			// Drain holds so later accepts are possible.
			for e.Holding() {
				e.Tick()
			}
			for l.Holding() {
				l.Tick()
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the forwarded token always carries a seq strictly above the
// accepted one (the per-hop increment that makes dedup sound).
func TestForwardIncrementsProperty(t *testing.T) {
	f := func(start uint64, holdRaw uint8) bool {
		hold := 1 + int(holdRaw%5)
		e := NewEager(0, 4, hold)
		seq := start%1000 + 1
		if !e.Accept(Token{Seq: seq}) {
			return seq <= 0
		}
		for i := 0; i < hold-1; i++ {
			if e.Tick() != nil {
				return false
			}
		}
		tok := e.Tick()
		return tok != nil && tok.Seq == seq+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
