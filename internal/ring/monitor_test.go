package ring

import "testing"

func TestMonitorsCleanFaultFreeRun(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 1, NewNode: eagerFactory(2)})
	m := NewMonitors(4)
	s.SetObserver(m.AsObserver())
	s.Run(400)
	if m.Violations() != 0 {
		t.Errorf("fault-free run has %d violations", m.Violations())
	}
	if m.LastViolationTime() != -1 {
		t.Errorf("LastViolationTime = %d", m.LastViolationTime())
	}
	if got := m.StarvedProcesses(60); len(got) != 0 {
		t.Errorf("StarvedProcesses = %v", got)
	}
}

func TestMonitorsDetectTokenLossAndRecovery(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 2, NewNode: eagerFactory(2), WrapperDelta: 20})
	m := NewMonitors(4)
	s.SetObserver(m.AsObserver())
	s.Run(50)
	s.DropAllInFlight()
	s.StealToken()
	s.Run(600)
	if m.Violations() == 0 {
		t.Fatal("token loss produced no single-live-token violations")
	}
	last := m.LastViolationTime()
	if last < 50 || last > 120 {
		t.Errorf("LastViolationTime = %d, want shortly after the fault", last)
	}
	if got := m.StarvedProcesses(60); len(got) != 0 {
		t.Errorf("starvation after recovery: %v (lastHeld %d..%d)", got, m.LastHeld(0), m.LastHeld(3))
	}
}

func TestMonitorsDetectStarvationWithoutWrapper(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 3, NewNode: eagerFactory(2)})
	m := NewMonitors(4)
	s.SetObserver(m.AsObserver())
	s.Run(50)
	s.DropAllInFlight()
	s.StealToken()
	s.Run(400)
	if got := m.StarvedProcesses(60); len(got) != 4 {
		t.Errorf("StarvedProcesses = %v, want all four", got)
	}
}

func TestMonotoneSeqViolation(t *testing.T) {
	ms := &monotoneSeq{name: "seq.0", i: 0}
	if v := ms.Observe(Snapshot{Seqs: []uint64{5}}); v != nil {
		t.Fatalf("first observation violated: %v", v)
	}
	if v := ms.Observe(Snapshot{Seqs: []uint64{3}}); v == nil {
		t.Fatal("regression not detected")
	}
	if ms.Name() != "seq.0" || ms.Pending() != 0 {
		t.Error("metadata wrong")
	}
}

func TestSnapFields(t *testing.T) {
	s := NewSim(SimConfig{N: 3, Seed: 4, NewNode: eagerFactory(2)})
	snap := s.Snap()
	if snap.Live != 1 || snap.Holder != 0 {
		t.Errorf("initial snap = %+v", snap)
	}
	if len(snap.Seqs) != 3 || snap.Seqs[0] != 1 {
		t.Errorf("seqs = %v", snap.Seqs)
	}
}
