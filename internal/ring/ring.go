// Package ring applies the paper's graybox method (§2.2) to a second
// problem: self-stabilizing token circulation on a unidirectional ring —
// mutual exclusion by token ownership, the problem family of Dijkstra's
// classic whitebox designs, redone graybox-style.
//
// # The local everywhere specification, TCspec
//
// Process i (successor (i+1) mod n) maintains two spec-level variables:
// holding (does i hold the token?) and seq_i (the highest token sequence
// number i has seen). The specification is local — each clause constrains
// one process — and everywhere — implementations satisfy it from any state:
//
//	Accept Spec:  on receiving token(s): if s > seq_i then seq_i := s and
//	              holding := true, else the token is discarded (stale or
//	              duplicate).
//	Forward Spec: holding is transient: eventually the process sends
//	              token(seq_i + 1) to its successor and stops holding.
//	Monotone Spec: seq_i never decreases.
//
// Sequence numbers strictly increase along the token's path, so Accept
// Spec's dedup guard is satisfiable everywhere and duplicated tokens die at
// the first process that has already seen newer.
//
// # The graybox wrapper
//
// Faults can lose the token (ring goes dead), duplicate it, or corrupt
// process state. The level-2 wrapper sits at the distinguished process 0
// and reads only TCspec variables:
//
//	W0 :: timer expired ∧ ¬holding.0  →  regenerate token(seq_0 + n);
//	                                     timer := δ
//
// The +n jump puts the regenerated token ahead of any copy of the old
// token still in flight (a token gains at most n−1 increments per lap), so
// spurious regenerations are harmless: the older token is discarded at its
// next hop past a process that accepted the newer one. A corrupted,
// too-high seq_x eventually falls behind the regenerated sequence numbers,
// which grow by ≥ n per period while the blockage lasts. Any implementation
// of TCspec composed with W0 therefore stabilizes to single-token
// circulation — the same Theorem-4 reasoning as TME, on a new problem.
package ring

import (
	"fmt"
)

// Token is the circulating token message.
type Token struct {
	// Seq is the token's sequence number (strictly increasing per hop).
	Seq uint64
}

// View is the graybox window into one ring process: exactly the TCspec
// variables. Wrappers and monitors receive a View, never a concrete node.
type View interface {
	// ID returns the process id.
	ID() int
	// N returns the ring size.
	N() int
	// Holding reports whether the process holds the token.
	Holding() bool
	// Seq returns seq_i, the highest sequence number seen.
	Seq() uint64
}

// Node is a ring process driven by the ring simulator. Implementations in
// this package: Eager (forwards as soon as it has used the token) and Lazy
// (holds the token until a client asks or a hold budget expires).
type Node interface {
	View

	// Accept delivers token t, returning whether it was accepted (Accept
	// Spec: only tokens newer than seq_i are).
	Accept(t Token) bool
	// Tick advances local time by one tick; the node returns a token to
	// forward when Forward Spec obliges it to pass on (nil otherwise).
	Tick() *Token
	// CorruptState arbitrarily overwrites the spec variables (transient
	// state corruption).
	CorruptState(holding bool, seq uint64)
}

// Eager is the straightforward implementation: accept, hold for HoldFor
// ticks (its critical section), then forward. Zero bookkeeping beyond the
// spec variables.
type Eager struct {
	id, n   int
	holding bool
	seq     uint64
	// HoldFor is the critical-section length in ticks.
	HoldFor int
	held    int
}

var _ Node = (*Eager)(nil)

// NewEager returns an eager forwarder for process id of n holding the
// token holdFor ticks per visit.
func NewEager(id, n, holdFor int) *Eager {
	if holdFor < 1 {
		holdFor = 1
	}
	return &Eager{id: id, n: n, HoldFor: holdFor}
}

// ID returns the process id.
func (e *Eager) ID() int { return e.id }

// N returns the ring size.
func (e *Eager) N() int { return e.n }

// Holding reports token ownership.
func (e *Eager) Holding() bool { return e.holding }

// Seq returns seq_i.
func (e *Eager) Seq() uint64 { return e.seq }

// Accept implements Accept Spec.
func (e *Eager) Accept(t Token) bool {
	if t.Seq <= e.seq {
		return false
	}
	e.seq = t.Seq
	e.holding = true
	e.held = 0
	return true
}

// Tick implements Forward Spec: after HoldFor ticks the token moves on.
func (e *Eager) Tick() *Token {
	if !e.holding {
		return nil
	}
	e.held++
	if e.held < e.HoldFor {
		return nil
	}
	e.holding = false
	e.seq++ // the forwarded token carries seq_i + 1
	return &Token{Seq: e.seq}
}

// CorruptState overwrites the spec variables.
func (e *Eager) CorruptState(holding bool, seq uint64) {
	e.holding, e.seq, e.held = holding, seq, 0
}

// Lazy is a second, structurally different implementation: it keeps the
// token while idle, forwarding only when its hold budget expires or after
// serving a queued client request. Its extra internal state (the request
// counter and budget) is invisible through View — which is the point: the
// wrapper cannot depend on it.
type Lazy struct {
	id, n   int
	holding bool
	seq     uint64
	// MaxHold bounds how long the token may be kept (Forward Spec's
	// "eventually"), in ticks.
	MaxHold int
	held    int
	// pending counts client CS requests not yet served.
	pending int
	serving int
	// ServeFor is the critical-section length per request.
	ServeFor int
}

var _ Node = (*Lazy)(nil)

// NewLazy returns a lazy holder for process id of n with the given hold
// budget and per-request service time.
func NewLazy(id, n, maxHold, serveFor int) *Lazy {
	if maxHold < 1 {
		maxHold = 1
	}
	if serveFor < 1 {
		serveFor = 1
	}
	return &Lazy{id: id, n: n, MaxHold: maxHold, ServeFor: serveFor}
}

// ID returns the process id.
func (l *Lazy) ID() int { return l.id }

// N returns the ring size.
func (l *Lazy) N() int { return l.n }

// Holding reports token ownership.
func (l *Lazy) Holding() bool { return l.holding }

// Seq returns seq_i.
func (l *Lazy) Seq() uint64 { return l.seq }

// Request queues one client CS request at this process.
func (l *Lazy) Request() { l.pending++ }

// Pending returns the queued request count (implementation detail, used by
// tests and workloads — not part of View).
func (l *Lazy) Pending() int { return l.pending }

// Accept implements Accept Spec.
func (l *Lazy) Accept(t Token) bool {
	if t.Seq <= l.seq {
		return false
	}
	l.seq = t.Seq
	l.holding = true
	l.held = 0
	l.serving = 0
	return true
}

// Tick implements Forward Spec with the lazy policy.
func (l *Lazy) Tick() *Token {
	if !l.holding {
		return nil
	}
	l.held++
	if l.pending > 0 {
		l.serving++
		if l.serving >= l.ServeFor {
			l.pending--
			l.serving = 0
		}
	}
	// Forward when idle with nothing queued, or when the budget expires
	// (the budget bounds "eventually" even under a corrupted pending
	// counter).
	if (l.pending == 0 && l.serving == 0) || l.held >= l.MaxHold {
		l.holding = false
		l.seq++
		return &Token{Seq: l.seq}
	}
	return nil
}

// CorruptState overwrites the spec variables and scrambles the lazy
// bookkeeping consistently with them.
func (l *Lazy) CorruptState(holding bool, seq uint64) {
	l.holding, l.seq = holding, seq
	l.held, l.serving = 0, 0
}

// Regenerator is the graybox wrapper W0: it watches process 0 through View
// and regenerates the token when none has been seen for Delta ticks. It
// keeps no implementation knowledge — only the spec variables and a timer.
type Regenerator struct {
	// Delta is the regeneration timeout in ticks; tune it above one ring
	// lap to avoid spurious (harmless, but wasteful) regenerations.
	Delta   int
	idle    int
	lastSeq uint64
	seen    bool
	// Regenerations counts how many tokens the wrapper created.
	Regenerations int
}

// NewRegenerator returns a wrapper with the given timeout (≥1).
func NewRegenerator(delta int) *Regenerator {
	if delta < 1 {
		delta = 1
	}
	return &Regenerator{Delta: delta}
}

// Observe notes one tick of process 0's view; it returns a regenerated
// token when the timeout expires with no sign of life — no holding and no
// seq_0 movement (a seq change means the token passed through since the
// last look).
func (r *Regenerator) Observe(v View) *Token {
	if v.Holding() || !r.seen || v.Seq() != r.lastSeq {
		r.idle = 0
		r.lastSeq = v.Seq()
		r.seen = true
		return nil
	}
	r.idle++
	if r.idle < r.Delta {
		return nil
	}
	r.idle = 0
	r.Regenerations++
	// Jump by n: ahead of any in-flight copy of the previous token.
	return &Token{Seq: v.Seq() + uint64(v.N())}
}

// String describes the wrapper.
func (r *Regenerator) String() string {
	return fmt.Sprintf("regenerator(δ=%d, fired=%d)", r.Delta, r.Regenerations)
}
