package ring_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ring"
)

// Example runs the second case study end to end: a healthy ring loses its
// token, stays dead without the wrapper, and is revived by the graybox
// regenerator.
func Example() {
	s := ring.NewSim(ring.SimConfig{
		N: 4, Seed: 11,
		NewNode:      func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
		WrapperDelta: 25,
	})
	s.Run(60)
	s.DropAllInFlight()
	s.StealToken()
	fmt.Println("after the fault, live tokens:", s.LiveTokens())
	s.Run(600)
	fmt.Println("after recovery, live tokens:", s.LiveTokens())
	fmt.Println("regenerations:", s.Metrics().Regenerations)
	// Output:
	// after the fault, live tokens: 0
	// after recovery, live tokens: 1
	// regenerations: 1
}
