package ftsynth

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// A small worked spec: states 0..4; legitimate chain 0→1→2→0; state 3 is a
// perturbed state; state 4 is bad. Faults can kick 1→3, and 3→4 is an
// unsafe slide the spec itself would take.
func workedProblem() Problem {
	spec := graybox.NewBuilder("spec", 5).
		AddChain(0, 1, 2, 0).
		AddTransition(3, 4). // spec would slide into the bad state
		AddTransition(3, 0). // ...but can also return home
		AddTransition(4, 4).
		SetInit(0).
		MustBuild()
	return Problem{
		Spec:   spec,
		Faults: [][2]int{{1, 3}},
		Bad:    []bool{false, false, false, false, true},
	}
}

func TestUnsafeClosure(t *testing.T) {
	p := workedProblem()
	ms := p.Unsafe()
	want := []bool{false, false, false, false, true}
	for s, w := range want {
		if ms[s] != w {
			t.Errorf("Unsafe[%d] = %v, want %v", s, ms[s], w)
		}
	}
	// Add a fault 3→4: now 3 is unsafe too (a fault alone dooms it).
	p.Faults = append(p.Faults, [2]int{3, 4})
	ms = p.Unsafe()
	if !ms[3] {
		t.Error("fault-closure missed state 3")
	}
	// And transitively 1 (fault 1→3, fault 3→4).
	if !ms[1] {
		t.Error("fault-closure missed state 1")
	}
}

func TestFailSafePrunesUnsafeSlide(t *testing.T) {
	p := workedProblem()
	fs, err := SynthesizeFailSafe(p)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Permits(3, 4) {
		t.Error("fail-safe permits the unsafe slide 3→4")
	}
	if !fs.Permits(3, 0) || !fs.Permits(0, 1) {
		t.Error("fail-safe pruned safe transitions")
	}
	wrapped := fs.Apply(p.Spec)
	if wrapped.HasTransition(3, 4) {
		t.Error("wrapped system keeps 3→4")
	}
	if bad := VerifyFailSafe(p, wrapped); bad != -1 {
		t.Errorf("bad state %d reachable in wrapped system", bad)
	}
	// The unwrapped spec does reach the bad state under the fault.
	if bad := VerifyFailSafe(p, p.Spec); bad != 4 {
		t.Errorf("unwrapped spec: VerifyFailSafe = %d, want 4", bad)
	}
}

func TestFailSafeHaltsWhereNothingSafeRemains(t *testing.T) {
	// State 1's only spec transition enters the bad state 2: fail-safe
	// must halt there (self-loop), sacrificing liveness for safety.
	spec := graybox.NewBuilder("s", 3).
		AddTransition(0, 0).
		AddTransition(1, 2).
		AddTransition(2, 2).
		SetInit(0).
		MustBuild()
	p := Problem{Spec: spec, Bad: []bool{false, false, true}}
	fs, err := SynthesizeFailSafe(p)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := fs.Apply(spec)
	if !wrapped.HasTransition(1, 1) {
		t.Error("halting self-loop missing at state 1")
	}
	if wrapped.HasTransition(1, 2) {
		t.Error("unsafe transition survived")
	}
}

func TestFailSafeInitUnsafe(t *testing.T) {
	spec := graybox.NewBuilder("s", 2).
		AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	p := Problem{Spec: spec, Bad: []bool{true, false}}
	if _, err := SynthesizeFailSafe(p); !errors.Is(err, ErrInitUnsafe) {
		t.Errorf("err = %v, want ErrInitUnsafe", err)
	}
}

func TestValidation(t *testing.T) {
	spec := graybox.NewBuilder("s", 2).
		AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	if _, err := SynthesizeFailSafe(Problem{Spec: spec, Bad: []bool{true}}); err == nil {
		t.Error("bad Bad length accepted")
	}
	if _, err := SynthesizeFailSafe(Problem{Spec: spec, Faults: [][2]int{{0, 9}}}); err == nil {
		t.Error("out-of-range fault accepted")
	}
	if _, err := SynthesizeMasking(Problem{Spec: spec, Candidates: [][2]int{{0, 9}}}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
}

func TestMaskingWorkedExample(t *testing.T) {
	p := workedProblem()
	m, err := SynthesizeMasking(p)
	if err != nil {
		t.Fatal(err)
	}
	// State 3 (fault-perturbed) must recover.
	if m.Recovery(3) < 0 || m.Distance(3) < 1 {
		t.Errorf("no recovery from 3: next=%d dist=%d", m.Recovery(3), m.Distance(3))
	}
	// Legitimate states need none.
	for _, s := range []int{0, 1, 2} {
		if m.Recovery(s) != -1 || m.Distance(s) != 0 {
			t.Errorf("state %d: recovery=%d dist=%d", s, m.Recovery(s), m.Distance(s))
		}
	}
	wrapped := m.Apply(p.Spec)
	if msg := VerifyMasking(p, wrapped); msg != "" {
		t.Errorf("masking verification failed: %s", msg)
	}
	// Note: masking promises recovery on the FAULT SPAN, not from every
	// state in Σ — the unreachable bad state 4 halts in place, so the
	// global StabilizingTo check would (correctly) reject the wrapped
	// system while VerifyMasking accepts it.
}

func TestMaskingLegitUnsafe(t *testing.T) {
	// A fault from a legitimate state straight into bad: masking must
	// refuse.
	spec := graybox.NewBuilder("s", 2).
		AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	p := Problem{
		Spec:   spec,
		Faults: [][2]int{{0, 1}},
		Bad:    []bool{false, true},
	}
	if _, err := SynthesizeMasking(p); !errors.Is(err, ErrLegitUnsafe) {
		t.Errorf("err = %v, want ErrLegitUnsafe", err)
	}
}

func TestMaskingNoRecovery(t *testing.T) {
	// Candidates that cannot bring the perturbed state home.
	p := workedProblem()
	p.Candidates = [][2]int{{0, 1}} // useless: nothing leaves state 3
	if _, err := SynthesizeMasking(p); !errors.Is(err, ErrNoRecovery) {
		t.Errorf("err = %v, want ErrNoRecovery", err)
	}
}

func TestMaskingWithLocalCandidates(t *testing.T) {
	p := workedProblem()
	p.Candidates = [][2]int{{3, 0}} // exactly the safe return home
	m, err := SynthesizeMasking(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recovery(3) != 0 {
		t.Errorf("Recovery(3) = %d, want 0", m.Recovery(3))
	}
}

// Graybox reusability: one masking tolerance, synthesized from the spec,
// applies to every everywhere-implementation.
func TestMaskingReusableAcrossImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	verified := 0
	for iter := 0; iter < 200; iter++ {
		n := 4 + rng.Intn(10)
		spec := graybox.Random(rng, "spec", n, 2.0)
		// Random bad states outside the legitimate set; random faults
		// from legitimate to arbitrary states.
		legit := spec.Legitimate()
		bad := make([]bool, n)
		nBad := 0
		for s := 0; s < n; s++ {
			if !legit[s] && rng.Intn(3) == 0 {
				bad[s] = true
				nBad++
			}
		}
		var faults [][2]int
		for f := 0; f < 1+rng.Intn(3); f++ {
			faults = append(faults, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		p := Problem{Spec: spec, Faults: faults, Bad: bad}
		m, err := SynthesizeMasking(p)
		if err != nil {
			continue // unsynthesizable instance: fine, skip
		}
		verified++
		for impl := 0; impl < 2; impl++ {
			c := graybox.RandomSub(rng, "c", spec)
			wrapped := m.Apply(c)
			if msg := VerifyMasking(p, wrapped); msg != "" {
				t.Fatalf("iter %d impl %d: %s", iter, impl, msg)
			}
			if s := VerifyFailSafe(p, wrapped); s >= 0 {
				t.Fatalf("iter %d impl %d: bad state %d reachable", iter, impl, s)
			}
		}
	}
	if verified < 30 {
		t.Fatalf("only %d synthesizable instances", verified)
	}
}

// Fail-safe reusability, property-tested the same way.
func TestFailSafeReusableAcrossImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	verified := 0
	for iter := 0; iter < 200; iter++ {
		n := 4 + rng.Intn(10)
		spec := graybox.Random(rng, "spec", n, 2.0)
		bad := make([]bool, n)
		for s := 0; s < n; s++ {
			if rng.Intn(5) == 0 {
				bad[s] = true
			}
		}
		var faults [][2]int
		for f := 0; f < 1+rng.Intn(3); f++ {
			faults = append(faults, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		p := Problem{Spec: spec, Faults: faults, Bad: bad}
		fs, err := SynthesizeFailSafe(p)
		if err != nil {
			continue
		}
		verified++
		for impl := 0; impl < 2; impl++ {
			c := graybox.RandomSub(rng, "c", spec)
			wrapped := fs.Apply(c)
			if s := VerifyFailSafe(p, wrapped); s >= 0 {
				t.Fatalf("iter %d impl %d: bad state %d reachable", iter, impl, s)
			}
		}
	}
	if verified < 30 {
		t.Fatalf("only %d synthesizable instances", verified)
	}
}
