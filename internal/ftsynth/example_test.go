package ftsynth_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ftsynth"
	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// ExampleSynthesizeMasking adds masking fault-tolerance to a 5-state spec:
// a fault kicks the system into a perturbed state that could slide into a
// bad state; the synthesized tolerance prunes the slide and installs a
// recovery transition.
func ExampleSynthesizeMasking() {
	spec := graybox.NewBuilder("demo", 5).
		AddChain(0, 1, 2, 0). // legitimate ring
		AddTransition(3, 4).  // unsafe slide
		AddTransition(3, 0).  // safe return
		AddTransition(4, 4).
		SetInit(0).
		MustBuild()
	p := ftsynth.Problem{
		Spec:   spec,
		Faults: [][2]int{{1, 3}},
		Bad:    []bool{false, false, false, false, true},
	}
	m, err := ftsynth.SynthesizeMasking(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("recovery from 3:", m.Recovery(3))
	fmt.Println("verified:", ftsynth.VerifyMasking(p, m.Apply(spec)) == "")
	// Output:
	// recovery from 3: 0
	// verified: true
}
