// Package ftsynth synthesizes graybox fail-safe and masking fault-tolerance
// for finite specifications — the paper's concluding remarks (§6) observe
// that the graybox approach and local everywhere specifications apply to
// these dependability properties exactly as they do to stabilization.
//
// A tolerance problem is a specification A (graybox knowledge only), a set
// of uncontrollable fault transitions F, and a set of bad (safety-
// violating) states:
//
//   - A component is FAIL-SAFE iff its computations in the presence of
//     faults implement the safety part of the specification: it may stop
//     making progress, but it never enters a bad state.
//   - A system is MASKING fault-tolerant iff its computations in the
//     presence of faults implement the specification outright: safety is
//     never violated and the system recovers to legitimate computations.
//
// Both syntheses are graybox: they read only the specification, so — like
// the stabilization wrapper — one synthesized tolerance applies to every
// everywhere-implementation of the specification (Apply).
//
// # Method
//
// Faults cannot be prevented, so any state from which faults *alone* can
// drive the system into a bad state is as good as bad: the unsafe closure
// ms = µX. Bad ∪ F⁻¹(X). Fail-safe synthesis prunes specification
// transitions that enter ms, halting (self-loop) where nothing safe
// remains. Masking synthesis additionally computes a recovery strategy —
// backward BFS to the legitimate set over transitions avoiding ms — and
// then verifies the closed loop: every state reachable from the initial
// states under wrapped-system ∪ fault transitions stays out of ms and has a
// recovery path. This mirrors the classical Arora–Kulkarni addition of
// masking tolerance, specialized to graybox inputs.
package ftsynth

import (
	"errors"
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// Problem is one tolerance-synthesis instance.
type Problem struct {
	// Spec is the specification A (the only system knowledge used).
	Spec *graybox.System
	// Faults are the uncontrollable fault transitions.
	Faults [][2]int
	// Bad marks safety-violating states, indexed by state. A nil Bad
	// means no state is inherently bad (pure-stabilization problems).
	Bad []bool
	// Candidates restricts the recovery transitions masking synthesis may
	// use (e.g. to locality-respecting corrections). Nil means any
	// transition between safe states — a reset-capable wrapper, matching
	// internal/synth's default.
	Candidates [][2]int
}

// Errors returned by the syntheses.
var (
	// ErrInitUnsafe: some initial state is in the unsafe closure — no
	// wrapper can keep the system safe even before it moves.
	ErrInitUnsafe = errors.New("ftsynth: an initial state is unsafe")
	// ErrLegitUnsafe: a legitimate state is in the unsafe closure —
	// faults can force a correctly-behaving system into a bad state.
	ErrLegitUnsafe = errors.New("ftsynth: a legitimate state is unsafe")
	// ErrNoRecovery: the fault span contains a state with no safe
	// recovery path to the legitimate set — masking is impossible.
	ErrNoRecovery = errors.New("ftsynth: fault span has a state without safe recovery")
)

func (p Problem) validate() error {
	n := p.Spec.NumStates()
	if p.Bad != nil && len(p.Bad) != n {
		return fmt.Errorf("ftsynth: Bad has %d entries for %d states", len(p.Bad), n)
	}
	for _, f := range p.Faults {
		if f[0] < 0 || f[0] >= n || f[1] < 0 || f[1] >= n {
			return fmt.Errorf("ftsynth: fault %d->%d out of range [0,%d)", f[0], f[1], n)
		}
	}
	for _, c := range p.Candidates {
		if c[0] < 0 || c[0] >= n || c[1] < 0 || c[1] >= n {
			return fmt.Errorf("ftsynth: candidate %d->%d out of range [0,%d)", c[0], c[1], n)
		}
	}
	return nil
}

// Unsafe returns the unsafe closure ms: bad states plus every state from
// which fault transitions alone can reach one.
func (p Problem) Unsafe() []bool {
	n := p.Spec.NumStates()
	ms := make([]bool, n)
	var queue []int
	for s := 0; s < n; s++ {
		if p.Bad != nil && p.Bad[s] {
			ms[s] = true
			queue = append(queue, s)
		}
	}
	// Backward closure over fault edges.
	rev := make([][]int, n)
	for _, f := range p.Faults {
		rev[f[1]] = append(rev[f[1]], f[0])
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range rev[v] {
			if !ms[u] {
				ms[u] = true
				queue = append(queue, u)
			}
		}
	}
	return ms
}

// FailSafe is a synthesized fail-safe tolerance: the per-state set of
// specification transitions that remain permitted.
type FailSafe struct {
	unsafe []bool
	n      int
}

// SynthesizeFailSafe computes the fail-safe tolerance for p. It fails only
// when an initial state is already unsafe.
func SynthesizeFailSafe(p Problem) (*FailSafe, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	ms := p.Unsafe()
	for _, s := range p.Spec.Init() {
		if ms[s] {
			return nil, fmt.Errorf("%w: state %d", ErrInitUnsafe, s)
		}
	}
	return &FailSafe{unsafe: ms, n: p.Spec.NumStates()}, nil
}

// Permits reports whether the tolerance allows taking (u,v).
func (fs *FailSafe) Permits(u, v int) bool {
	return !fs.unsafe[u] && !fs.unsafe[v]
}

// Apply wraps an everywhere-implementation c of the problem's spec: its
// transitions into the unsafe set are pruned; states left without a
// successor halt (self-loop). The wrapped system never reaches a bad state
// under any finite fault sequence starting from an initial state — the
// fail-safe guarantee, verified in tests by exhaustive reachability.
func (fs *FailSafe) Apply(c *graybox.System) *graybox.System {
	b := graybox.NewBuilder(c.Name()+" [fail-safe]", fs.n)
	for u := 0; u < fs.n; u++ {
		for _, v := range c.Successors(u) {
			if fs.Permits(u, v) {
				b.AddTransition(u, v)
			}
		}
	}
	b.SetInit(c.Init()...)
	return b.Totalize().MustBuild()
}

// Masking is a synthesized masking tolerance: a fail-safe pruning plus a
// recovery strategy into the legitimate set.
type Masking struct {
	fs    *FailSafe
	legit []bool
	// next[s] is the recovery successor outside the legitimate set, or
	// -1 (legitimate, or unreachable-by-faults and left to halt).
	next []int
	// dist[s] is the recovery length (-1 where no path exists).
	dist []int
}

// SynthesizeMasking computes the masking tolerance for p and verifies the
// closed loop: from the initial states, under wrapped-spec and fault
// transitions, the system never meets the unsafe set and always has a
// recovery path back to the legitimate states.
func SynthesizeMasking(p Problem) (*Masking, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	ms := p.Unsafe()
	n := p.Spec.NumStates()
	legit := p.Spec.Legitimate()
	for s := 0; s < n; s++ {
		if legit[s] && ms[s] {
			return nil, fmt.Errorf("%w: state %d", ErrLegitUnsafe, s)
		}
	}

	// Partial backward BFS to the legitimate set over the safe candidate
	// transitions (both endpoints outside ms). Recovery actions are
	// wrapper actions, so with nil Candidates they may be arbitrary safe
	// assignments, as in internal/synth.
	m := &Masking{
		fs:    &FailSafe{unsafe: ms, n: n},
		legit: legit,
		next:  make([]int, n),
		dist:  make([]int, n),
	}
	for s := range m.next {
		m.next[s], m.dist[s] = -1, -1
	}
	// rev[v] lists safe candidate sources reaching v.
	rev := make([][]int, n)
	if p.Candidates != nil {
		for _, c := range p.Candidates {
			if !ms[c[0]] && !ms[c[1]] && c[0] != c[1] {
				rev[c[1]] = append(rev[c[1]], c[0])
			}
		}
	}
	var frontier []int
	for s := 0; s < n; s++ {
		if legit[s] {
			m.dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			if p.Candidates != nil {
				for _, u := range rev[v] {
					if ms[u] || m.dist[u] >= 0 {
						continue
					}
					m.dist[u] = m.dist[v] + 1
					m.next[u] = v
					next = append(next, u)
				}
				continue
			}
			for u := 0; u < n; u++ {
				if u == v || ms[u] || m.dist[u] >= 0 {
					continue
				}
				m.dist[u] = m.dist[v] + 1
				m.next[u] = v
				next = append(next, u)
			}
		}
		frontier = next
	}

	// Closed-loop verification on the wrapped SPEC plus faults.
	wrapped := m.Apply(p.Spec)
	span := reachableUnder(wrapped, p.Faults, wrapped.Init())
	for s := 0; s < n; s++ {
		if !span[s] {
			continue
		}
		if ms[s] {
			return nil, fmt.Errorf("%w (unsafe state %d in span)", ErrNoRecovery, s)
		}
		if !legit[s] && m.next[s] < 0 {
			return nil, fmt.Errorf("%w (state %d)", ErrNoRecovery, s)
		}
	}
	return m, nil
}

// Recovery returns the recovery successor for s (-1 inside the legitimate
// set or where no safe path exists).
func (m *Masking) Recovery(s int) int { return m.next[s] }

// Distance returns the recovery length from s (0 when legitimate, -1 when
// unreachable).
func (m *Masking) Distance(s int) int { return m.dist[s] }

// Apply wraps an everywhere-implementation c of the spec: inside the
// legitimate set c runs (pruned fail-safe); outside, the recovery strategy
// overrides it; states with no safe option halt.
func (m *Masking) Apply(c *graybox.System) *graybox.System {
	n := m.fs.n
	b := graybox.NewBuilder(c.Name()+" [masking]", n)
	for u := 0; u < n; u++ {
		if !m.legit[u] {
			if nx := m.next[u]; nx >= 0 {
				b.AddTransition(u, nx)
			}
			continue
		}
		for _, v := range c.Successors(u) {
			if m.fs.Permits(u, v) {
				b.AddTransition(u, v)
			}
		}
	}
	b.SetInit(c.Init()...)
	return b.Totalize().MustBuild()
}

// reachableUnder returns the states reachable from seeds via sys's
// transitions plus the fault transitions.
func reachableUnder(sys *graybox.System, faults [][2]int, seeds []int) []bool {
	n := sys.NumStates()
	fadj := make([][]int, n)
	for _, f := range faults {
		fadj[f[0]] = append(fadj[f[0]], f[1])
	}
	seen := make([]bool, n)
	stack := append([]int(nil), seeds...)
	for _, s := range seeds {
		seen[s] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range sys.Successors(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
		for _, v := range fadj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// VerifyFailSafe exhaustively checks the fail-safe guarantee of a wrapped
// system: no bad state is reachable from its initial states under system
// plus fault transitions. It returns the offending state, or -1.
func VerifyFailSafe(p Problem, wrapped *graybox.System) int {
	if p.Bad == nil {
		return -1
	}
	span := reachableUnder(wrapped, p.Faults, wrapped.Init())
	for s, in := range span {
		if in && p.Bad[s] {
			return s
		}
	}
	return -1
}

// VerifyMasking exhaustively checks the masking guarantee of a wrapped
// system: fail-safe, plus the wrapped system (faults quiescent) is
// stabilizing to the spec. It returns a description of the first failure,
// or "" when the guarantee holds.
func VerifyMasking(p Problem, wrapped *graybox.System) string {
	if s := VerifyFailSafe(p, wrapped); s >= 0 {
		return fmt.Sprintf("bad state %d reachable", s)
	}
	// Recovery: restrict attention to the fault span — states outside it
	// are never entered, so halting there is irrelevant. Check that no
	// cycle within the span avoids the legitimate set.
	span := reachableUnder(wrapped, p.Faults, wrapped.Init())
	legit := p.Spec.Legitimate()
	// Simple check: from every span state, following wrapped transitions
	// must reach legit within n steps (the strategy is a DAG into legit
	// and inside legit we stay there).
	n := wrapped.NumStates()
	for s := 0; s < n; s++ {
		if !span[s] || legit[s] {
			continue
		}
		cur := s
		ok := false
		for step := 0; step <= n; step++ {
			if legit[cur] {
				ok = true
				break
			}
			succs := wrapped.Successors(cur)
			cur = succs[0]
		}
		if !ok {
			return fmt.Sprintf("state %d does not recover", s)
		}
	}
	return ""
}
