package fault

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func raSim(seed int64, wrapped bool) *sim.Sim {
	cfg := sim.Config{
		N:        3,
		Seed:     seed,
		NewNode:  func(id, n int) tme.Node { return ra.New(id, n) },
		Workload: true,
	}
	if wrapped {
		cfg.NewWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(5) }
	}
	return sim.New(cfg)
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		MessageLoss: "loss", MessageDup: "dup", MessageCorrupt: "corrupt",
		StateCorrupt: "state", ChannelFlush: "flush", Kind(0): "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestMixPickRespectsZeroWeights(t *testing.T) {
	in := NewInjector(1, Mix{Loss: 1}, Options{})
	for i := 0; i < 100; i++ {
		if k := in.mix.Pick(in.rng); k != MessageLoss {
			t.Fatalf("pick = %v with loss-only mix", k)
		}
	}
}

func TestMixPickAllZeroDefaultsUniform(t *testing.T) {
	in := NewInjector(2, Mix{}, Options{})
	seen := map[Kind]bool{}
	for i := 0; i < 500; i++ {
		seen[in.mix.Pick(in.rng)] = true
	}
	for _, k := range []Kind{MessageLoss, MessageDup, MessageCorrupt, StateCorrupt, ChannelFlush} {
		if !seen[k] {
			t.Errorf("class %v never drawn from the default mix", k)
		}
	}
}

func TestBurstCountsFaults(t *testing.T) {
	s := raSim(1, false)
	in := NewInjector(7, DefaultMix, Options{})
	s.At(10, func(s *sim.Sim) { in.Burst(s, 5) })
	s.Run(20)
	if in.Count() != 5 {
		t.Errorf("Count = %d, want 5", in.Count())
	}
}

func TestScheduleInstallsBursts(t *testing.T) {
	s := raSim(2, false)
	in := NewInjector(8, DefaultMix, Options{})
	in.Schedule(s, []int64{10, 20, 30}, 2)
	s.Run(40)
	if in.Count() != 6 {
		t.Errorf("Count = %d, want 6", in.Count())
	}
}

func TestMessageFaultsOnEmptyNetworkAreNoops(t *testing.T) {
	s := sim.New(sim.Config{
		N:       2,
		Seed:    3,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	in := NewInjector(9, Mix{Loss: 1, Dup: 1, Corrupt: 1, Flush: 1}, Options{})
	s.At(0, func(s *sim.Sim) { in.Burst(s, 20) })
	s.Run(10)
	// Nothing to assert beyond not panicking and channels staying empty.
	if s.Net().TotalQueued() != 0 {
		t.Error("faults materialized messages from nothing")
	}
}

func TestStateCorruptChangesSomethingEventually(t *testing.T) {
	s := raSim(4, false)
	before := tme.Snapshot(s.Node(0))
	in := NewInjector(10, Mix{State: 1}, Options{})
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		in.Burst(s, 3)
		for id := 0; id < s.N(); id++ {
			after := tme.Snapshot(s.Node(id))
			if after.Phase != before.Phase || after.REQ != before.REQ {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("30 state faults changed nothing observable")
	}
}

func TestInvalidPhaseOnlyWhenAllowed(t *testing.T) {
	in := NewInjector(11, Mix{State: 1}, Options{})
	for i := 0; i < 300; i++ {
		c := in.RandomCorruption(0, 3)
		if c.Phase != 0 && !c.Phase.Valid() {
			t.Fatal("invalid phase produced without AllowInvalidPhase")
		}
	}
	in2 := NewInjector(11, Mix{State: 1}, Options{AllowInvalidPhase: true})
	sawInvalid := false
	for i := 0; i < 300; i++ {
		c := in2.RandomCorruption(0, 3)
		if c.Phase != 0 && !c.Phase.Valid() {
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Error("AllowInvalidPhase never produced an invalid phase")
	}
}

func TestDeterministicInjection(t *testing.T) {
	run := func() (int, int) {
		s := raSim(5, true)
		in := NewInjector(12, DefaultMix, Options{})
		in.Schedule(s, []int64{50, 100}, 10)
		s.Run(2000)
		return len(s.Metrics().Entries), s.Metrics().ProgramMsgs
	}
	e1, p1 := run()
	e2, p2 := run()
	if e1 != e2 || p1 != p2 {
		t.Errorf("same seeds diverged: (%d,%d) vs (%d,%d)", e1, p1, e2, p2)
	}
}

// Theorem 8 at system scale: a wrapped RA system subjected to heavy fault
// bursts keeps making progress afterwards.
func TestWrappedSystemSurvivesBursts(t *testing.T) {
	s := raSim(6, true)
	in := NewInjector(13, DefaultMix, Options{})
	in.Schedule(s, []int64{100, 150, 200}, 15)
	s.Run(5000)
	var after int
	for _, e := range s.Metrics().Entries {
		if e.Time > 200 {
			after++
		}
	}
	if after == 0 {
		t.Fatal("no CS entries after the last fault burst — wrapped system did not recover")
	}
}

func TestImproperInit(t *testing.T) {
	s := raSim(7, true)
	ImproperInit(s, 21, Options{})
	// At least one node should start in a non-Init state.
	perturbed := false
	for i := 0; i < s.N(); i++ {
		snap := tme.Snapshot(s.Node(i))
		if snap.Phase != tme.Thinking || !snap.REQ.IsZero() {
			perturbed = true
		}
		for k := range snap.Local {
			if !snap.Local[k].IsZero() || snap.Received[k] {
				perturbed = true
			}
		}
	}
	if !perturbed {
		t.Error("ImproperInit left every node in the Init state")
	}
	// And the wrapped system still converges to progress.
	s.Run(5000)
	if len(s.Metrics().Entries) == 0 {
		t.Fatal("no entries after improper initialization with wrapper")
	}
}

func TestDropAllInFlight(t *testing.T) {
	s := raSim(8, false)
	s.Request(0)
	s.Run(0)
	if s.Net().TotalQueued() == 0 {
		t.Fatal("no in-flight messages to drop")
	}
	DropAllInFlight(s)
	if s.Net().TotalQueued() != 0 {
		t.Error("DropAllInFlight left messages queued")
	}
}
