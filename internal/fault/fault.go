// Package fault injects the TME fault model of DSN 2001 §3.1 into a
// simulation: messages corrupted, lost, or duplicated at any time; process
// and channel state transiently (and arbitrarily) corrupted; improper
// initialization. All choices are drawn from a seeded source, so a faulty
// run remains a deterministic function of its seeds.
//
// The injector targets engine.Surface — the substrate-agnostic fault
// surface — so one Mix drives faults into every engine-backed system: the
// TME simulator, the token-circulation ring, and the Dijkstra token-ring
// daemon. Substrates that expose the richer TME-typed hooks (MutateInFlight,
// CorruptibleNode) get the paper's field-by-field corruption model; the
// rest get the surface's generic corruption and perturbation.
//
// Faults are transient and finite in number — exactly the premise under
// which stabilization is claimed. The injector never touches anything after
// its last scheduled burst, so "convergence time after the last fault" is
// well defined.
package fault

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Surface is the fault surface the injector drives — engine.Surface,
// re-exported so callers can read the contract where the injector lives.
type Surface = engine.Surface

// tmeSurface is the richer TME-typed corruption interface. *sim.Sim
// implements it; substrates that do fall back from the generic surface
// methods to the paper's field-by-field fault model.
type tmeSurface interface {
	Surface
	// MutateInFlight applies f to the i-th in-flight message on ep.
	MutateInFlight(ep channel.Endpoint, i int, f func(*tme.Message)) bool
	// CorruptibleNode returns process id's corruption hook, or nil.
	CorruptibleNode(id int) tme.Corruptible
}

// Kind enumerates the fault classes of the paper's fault model.
type Kind int

// Fault classes. Dispatch over them (Apply, the mix normalizer) must be
// total: a class added here and missed there would silently never fire.
//
//gblint:kindset fault-kind
const (
	// MessageLoss drops one in-flight message.
	MessageLoss Kind = iota + 1
	// MessageDup duplicates one in-flight message.
	MessageDup
	// MessageCorrupt overwrites fields of one in-flight message.
	MessageCorrupt
	// StateCorrupt transiently corrupts one process's state.
	StateCorrupt
	// ChannelFlush empties one channel (modelling channel failure).
	ChannelFlush
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case MessageLoss:
		return "loss"
	case MessageDup:
		return "dup"
	case MessageCorrupt:
		return "corrupt"
	case StateCorrupt:
		return "state"
	case ChannelFlush:
		return "flush"
	default:
		return "unknown"
	}
}

// Mix weights the fault classes within a burst. Zero weights exclude a
// class; an all-zero Mix defaults to uniform over all classes.
type Mix struct {
	Loss, Dup, Corrupt, State, Flush int
}

// DefaultMix exercises every fault class equally.
var DefaultMix = Mix{Loss: 1, Dup: 1, Corrupt: 1, State: 1, Flush: 1}

func (m Mix) total() int { return m.Loss + m.Dup + m.Corrupt + m.State + m.Flush }

// Pick draws a fault class according to the weights. Exported so
// schedule generators (internal/wire's pre-drawn live schedules) share the
// injector's exact weighting.
func (m Mix) Pick(rng *rand.Rand) Kind {
	if m.total() == 0 {
		m = DefaultMix
	}
	r := rng.Intn(m.total())
	switch {
	case r < m.Loss:
		return MessageLoss
	case r < m.Loss+m.Dup:
		return MessageDup
	case r < m.Loss+m.Dup+m.Corrupt:
		return MessageCorrupt
	case r < m.Loss+m.Dup+m.Corrupt+m.State:
		return StateCorrupt
	default:
		return ChannelFlush
	}
}

// Options tune the injector.
type Options struct {
	// AllowInvalidPhase lets StateCorrupt set phases outside {t,h,e},
	// breaking Structural Spec. Off by default: the paper's Lspec
	// implementations maintain structure, and repairing sub-Lspec damage
	// is the (extension) job of level-1 wrappers.
	AllowInvalidPhase bool
	// MaxClock bounds forged timestamp clocks. Default 64.
	MaxClock uint64
}

func (o Options) withDefaults() Options {
	if o.MaxClock == 0 {
		o.MaxClock = 64
	}
	return o
}

// Injector applies faults to a simulation. Construct with NewInjector.
type Injector struct {
	rng   *rand.Rand
	mix   Mix
	opts  Options
	count int

	// obs instruments, bound lazily to the first simulation seen (nil
	// fields when that simulation runs without observability).
	bound   bool
	cFaults *obs.Counter
	cByKind [6]*obs.Counter // indexed by Kind
	trace   *obs.Trace
	conv    *obs.Convergence
}

// kindLabels are static trace labels, one per fault class.
var kindLabels = [6]string{"", "loss", "dup", "corrupt", "state", "flush"}

// bind caches the simulation's obs handles on first use.
func (in *Injector) bind(s Surface) {
	if in.bound {
		return
	}
	in.bound = true
	o := s.Obs()
	if o == nil {
		return
	}
	r := o.Registry()
	in.cFaults = r.Counter("fault_injected_total", "faults injected")
	in.cByKind[MessageLoss] = r.Counter("fault_loss_total", "message-loss faults")
	in.cByKind[MessageDup] = r.Counter("fault_dup_total", "message-duplication faults")
	in.cByKind[MessageCorrupt] = r.Counter("fault_corrupt_total", "message-corruption faults")
	in.cByKind[StateCorrupt] = r.Counter("fault_state_total", "process-state corruptions")
	in.cByKind[ChannelFlush] = r.Counter("fault_flush_total", "channel flushes")
	in.trace = o.Tracer()
	in.conv = o.Convergence()
}

// NewInjector returns an injector drawing from the given seed and mix.
func NewInjector(seed int64, mix Mix, opts Options) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), mix: mix, opts: opts.withDefaults()}
}

// Count returns how many faults have been applied so far.
func (in *Injector) Count() int { return in.count }

// Burst applies n faults to s immediately (at the current virtual time).
func (in *Injector) Burst(s Surface, n int) {
	for i := 0; i < n; i++ {
		in.one(s)
	}
}

// Schedule arranges count faults at each of the given times.
func (in *Injector) Schedule(s Surface, times []int64, countPerBurst int) {
	for _, t := range times {
		t := t
		s.Core().At(t, func() { in.Burst(s, countPerBurst) })
	}
}

// one applies a single randomly chosen fault.
func (in *Injector) one(s Surface) {
	in.Apply(s, in.mix.Pick(in.rng))
}

// Apply applies one fault of class kind to s, drawing the fault's details
// (which channel, which message, what damage) from the injector's source.
// This is the entry point for pre-drawn schedules — internal/wire's live
// fault schedules fix the kind sequence up front and Apply each one at its
// wall-clock offset.
func (in *Injector) Apply(s Surface, kind Kind) {
	if kind < MessageLoss || kind > ChannelFlush {
		return
	}
	in.bind(s)
	in.count++
	switch kind {
	case MessageLoss:
		in.loss(s)
	case MessageDup:
		in.dup(s)
	case MessageCorrupt:
		in.corrupt(s)
	case StateCorrupt:
		in.state(s)
	case ChannelFlush:
		in.flush(s)
	}
	in.cFaults.Inc()
	in.cByKind[kind].Inc()
	in.conv.RecordFault(s.Now())
	in.trace.Emit(obs.Event{
		Time: s.Now(), Kind: obs.EvFault, A: -1, B: -1, Detail: kindLabels[kind],
	})
}

// nonEmptyChannel picks a uniformly random non-empty channel, or ok=false
// when all channels are empty.
func (in *Injector) nonEmptyChannel(s Surface) (channel.Endpoint, bool) {
	var candidates []channel.Endpoint
	for _, ep := range s.Channels() {
		if s.QueueLen(ep) > 0 {
			candidates = append(candidates, ep)
		}
	}
	if len(candidates) == 0 {
		return channel.Endpoint{}, false
	}
	return candidates[in.rng.Intn(len(candidates))], true
}

func (in *Injector) loss(s Surface) {
	ep, ok := in.nonEmptyChannel(s)
	if !ok {
		return
	}
	s.FaultDrop(ep, in.rng.Intn(s.QueueLen(ep)))
}

func (in *Injector) dup(s Surface) {
	ep, ok := in.nonEmptyChannel(s)
	if !ok {
		return
	}
	i := in.rng.Intn(s.QueueLen(ep))
	// The copy needs its own delivery opportunity.
	s.FaultDuplicate(ep, i, 1+in.rng.Int63n(5))
}

func (in *Injector) corrupt(s Surface) {
	ep, ok := in.nonEmptyChannel(s)
	if !ok {
		return
	}
	i := in.rng.Intn(s.QueueLen(ep))
	ts, typed := s.(tmeSurface)
	if !typed {
		s.FaultCorrupt(ep, i, in.rng)
		return
	}
	ts.MutateInFlight(ep, i, func(m *tme.Message) {
		switch in.rng.Intn(3) {
		case 0:
			m.TS = in.randomTS(in.rng.Intn(s.N()))
		case 1:
			m.Kind = tme.Kind(in.rng.Intn(4)) // may be invalid: receivers drop it
		case 2:
			m.From = in.rng.Intn(s.N() + 1) // may be out of range
		}
	})
}

func (in *Injector) state(s Surface) {
	id := in.rng.Intn(s.N())
	ts, typed := s.(tmeSurface)
	if !typed {
		s.FaultPerturb(id, in.rng)
		return
	}
	node := ts.CorruptibleNode(id)
	if node == nil {
		return
	}
	node.Corrupt(in.RandomCorruption(id, s.N()))
}

func (in *Injector) flush(s Surface) {
	ep, ok := in.nonEmptyChannel(s)
	if !ok {
		return
	}
	s.FaultFlush(ep)
}

func (in *Injector) randomTS(pid int) ltime.Timestamp {
	return ltime.Timestamp{Clock: uint64(in.rng.Int63n(int64(in.opts.MaxClock))), PID: pid}
}

// RandomCorruption builds an arbitrary transient state corruption for
// process id of n, drawn from the injector's source.
func (in *Injector) RandomCorruption(id, n int) tme.Corruption {
	return RandomCorruptionFrom(in.rng, id, n, in.opts)
}

// RandomCorruptionFrom builds an arbitrary transient state corruption for
// process id of n from an explicit source — for callers (the live chaos
// proxy's perturb hook) that corrupt node state outside an Injector.
func RandomCorruptionFrom(rng *rand.Rand, id, n int, opts Options) tme.Corruption {
	opts = opts.withDefaults()
	randomTS := func(pid int) ltime.Timestamp {
		return ltime.Timestamp{Clock: uint64(rng.Int63n(int64(opts.MaxClock))), PID: pid}
	}
	c := tme.Corruption{Seed: rng.Int63()}
	if rng.Intn(2) == 0 {
		if opts.AllowInvalidPhase && rng.Intn(4) == 0 {
			c.Phase = tme.Phase(4 + rng.Intn(8))
		} else {
			c.Phase = tme.Phase(1 + rng.Intn(3))
		}
	}
	if rng.Intn(2) == 0 {
		ts := randomTS(id)
		c.REQ = &ts
	}
	if rng.Intn(2) == 0 {
		c.LocalREQ = make(map[int]ltime.Timestamp)
		for k := 0; k < n; k++ {
			if k != id && rng.Intn(2) == 0 {
				c.LocalREQ[k] = randomTS(k)
			}
		}
	}
	for k := 0; k < n; k++ {
		if k == id {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			c.DropReceived = append(c.DropReceived, k)
		case 1:
			c.ForgeReceived = append(c.ForgeReceived, k)
		}
	}
	if rng.Intn(3) == 0 {
		clk := uint64(rng.Int63n(int64(opts.MaxClock)))
		c.Clock = &clk
	}
	if rng.Intn(3) == 0 {
		c.ScrambleInternal = true
	}
	return c
}

// DropAllInFlight flushes every channel — the paper's §4 deadlock scenario
// generator when applied while requests are in flight.
func DropAllInFlight(s Surface) {
	for _, ep := range s.Channels() {
		s.FaultFlush(ep)
	}
	if o := s.Obs(); o != nil {
		// Registration is owned by bind (each metric name has exactly one
		// registration site); a throwaway injector reuses those instruments
		// through the registry's idempotent lookup.
		var in Injector
		in.bind(s)
		in.cByKind[ChannelFlush].Inc()
		in.cFaults.Inc()
		o.Convergence().RecordFault(s.Now())
		o.Tracer().Emit(obs.Event{
			Time: s.Now(), Kind: obs.EvFault, A: -1, B: -1, Detail: "drop-all-in-flight",
		})
	}
}

// ImproperInit corrupts every process before the run starts, modelling
// arbitrary (improper) initialization. Call it before the first Run.
func ImproperInit(s Surface, seed int64, opts Options) {
	in := NewInjector(seed, Mix{State: 1}, opts)
	in.bind(s)
	ts, typed := s.(tmeSurface)
	for i := 0; i < s.N(); i++ {
		applied := false
		if typed {
			if node := ts.CorruptibleNode(i); node != nil {
				node.Corrupt(in.RandomCorruption(i, s.N()))
				applied = true
			}
		} else {
			applied = s.FaultPerturb(i, in.rng)
		}
		if applied {
			in.cFaults.Inc()
			in.cByKind[StateCorrupt].Inc()
			in.conv.RecordFault(s.Now())
			in.trace.Emit(obs.Event{
				Time: s.Now(), Kind: obs.EvFault, A: i, B: -1, Detail: "improper-init",
			})
		}
	}
}
