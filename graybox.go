// Package graybox is the public API of the graybox-stabilization library:
// a curated facade over the implementation packages under internal/.
//
// The three layers a downstream user touches:
//
//   - The formal framework — finite systems, the implements relations, the
//     box composition, stabilization checking, and wrapper synthesis.
//   - The TME system — the Lspec node implementations (Ricart–Agrawala and
//     Lamport), the graybox wrappers W and W', the deterministic simulator,
//     the fault injector, and the Lspec/TME_Spec monitors.
//   - The measurement harness — configured faulty runs with convergence
//     verdicts.
//
// See the package documentation of the re-exported types for details; the
// runnable programs under examples/ use exactly this surface.
package graybox

import (
	"github.com/graybox-stabilization/graybox/internal/fault"
	gb "github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/lspec"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/runtime"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/synth"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// --- Formal framework (internal/graybox, internal/synth) --------------

type (
	// System is a finite fusion-closed system: a total transition
	// relation over states 0..n-1 plus initial states.
	System = gb.System
	// SystemBuilder accumulates states, transitions, and initial states.
	SystemBuilder = gb.Builder
	// Lasso is a counterexample to stabilization.
	Lasso = gb.Lasso
	// ImplementsResult reports an implements query with counterexample.
	ImplementsResult = gb.ImplementsResult
	// Strategy is a synthesized recovery strategy for a finite spec.
	Strategy = synth.Strategy
)

// NewSystem returns a builder for a system named name over n states.
func NewSystem(name string, n int) *SystemBuilder { return gb.NewBuilder(name, n) }

// Implements decides [C ⇒ A]_init.
func Implements(c, a *System) ImplementsResult { return gb.Implements(c, a) }

// EverywhereImplements decides [C ⇒ A].
func EverywhereImplements(c, a *System) ImplementsResult { return gb.EverywhereImplements(c, a) }

// StabilizingTo decides whether c is stabilizing to a, with a lasso
// counterexample on failure.
func StabilizingTo(c, a *System) (bool, *Lasso) { return gb.StabilizingTo(c, a) }

// Box returns the ▯ composition of two systems.
func Box(c, w *System) (*System, error) { return gb.Box(c, w) }

// Product returns the asynchronous product of local systems.
func Product(name string, parts ...*System) (*System, error) { return gb.Product(name, parts...) }

// Fig1A and Fig1C are the paper's Figure 1 specification and
// implementation.
func Fig1A() *System { return gb.Fig1A() }

// Fig1C is Figure 1's implementation C (not stabilizing to A).
func Fig1C() *System { return gb.Fig1C() }

// Synthesize computes a recovery strategy for spec a over candidate
// transitions (see AllCandidates).
func Synthesize(a *System, candidates [][2]int) (*Strategy, error) {
	return synth.Synthesize(a, candidates)
}

// AllCandidates returns every non-self-loop transition over n states.
func AllCandidates(n int) [][2]int { return synth.AllCandidates(n) }

// --- TME domain (internal/tme, internal/ra, internal/lamport) ---------

type (
	// Timestamp is a totally ordered logical timestamp.
	Timestamp = ltime.Timestamp
	// SpecView is the graybox window into a process: the Lspec variables
	// and nothing else — all a wrapper may read.
	SpecView = tme.SpecView
	// Node is a TME process as driven by an execution substrate.
	Node = tme.Node
	// Message is one TME interprocess message.
	Message = tme.Message
	// Phase is a client phase (Thinking, Hungry, Eating).
	Phase = tme.Phase
	// Corruption describes a transient state-corruption fault.
	Corruption = tme.Corruption
)

// Client phases.
const (
	Thinking = tme.Thinking
	Hungry   = tme.Hungry
	Eating   = tme.Eating
)

// NewRicartAgrawala returns process id of an n-process Ricart–Agrawala
// system (DSN 2001 §5.1).
func NewRicartAgrawala(id, n int) Node { return ra.New(id, n) }

// NewLamport returns process id of an n-process Lamport ME system with the
// paper's everywhere-implementation modifications (§5.2).
func NewLamport(id, n int) Node { return lamport.New(id, n) }

// --- Wrappers (internal/wrapper) ---------------------------------------

type (
	// Level2 is a level-2 dependability wrapper (inter-process repair).
	Level2 = wrapper.Level2
	// Level1 is a level-1 dependability wrapper (intra-process repair).
	Level1 = wrapper.Level1
	// Timed is W': the wrapper behind a timeout δ.
	Timed = wrapper.Timed
	// WrapperFunc adapts a plain wrapper function into a Level2.
	WrapperFunc = wrapper.Func
)

// W evaluates the paper's refined wrapper W_j over a spec view.
func W(v SpecView) []Message { return wrapper.W(v) }

// NewTimedWrapper returns W' with timeout period delta.
func NewTimedWrapper(delta int64) *Timed { return wrapper.NewTimed(delta) }

// --- Execution substrates (internal/sim, internal/runtime) ------------

type (
	// Sim is the deterministic discrete-event simulator.
	Sim = sim.Sim
	// SimConfig parameterizes a simulation.
	SimConfig = sim.Config
	// Cluster runs a TME system on real goroutines and channels.
	Cluster = runtime.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = runtime.Config
	// Injector applies the §3.1 fault model to a simulation.
	Injector = fault.Injector
	// FaultMix weights the fault classes within a burst.
	FaultMix = fault.Mix
	// Monitors checks a run against Lspec and TME_Spec.
	Monitors = lspec.Monitors
)

// NewSim constructs a simulator (panics on missing N/NewNode).
func NewSim(cfg SimConfig) *Sim { return sim.New(cfg) }

// NewCluster builds a goroutine cluster; Start it, and always Stop it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return runtime.NewCluster(cfg) }

// NewInjector returns a seeded fault injector.
func NewInjector(seed int64, mix FaultMix) *Injector {
	return fault.NewInjector(seed, mix, fault.Options{})
}

// NewMonitors returns Lspec/TME_Spec monitors for an n-process system.
func NewMonitors(n int) *Monitors { return lspec.New(n) }

// --- Measurement harness (internal/harness) ---------------------------

type (
	// RunConfig describes one measured faulty run.
	RunConfig = harness.RunConfig
	// RunResult summarizes it.
	RunResult = harness.RunResult
	// Algo selects a reference implementation.
	Algo = harness.Algo
)

// Reference algorithms and the wrapperless sentinel.
const (
	RicartAgrawala = harness.RA
	Lamport        = harness.Lamport
	NoWrapper      = harness.NoWrapper
)

// Run executes one configured run and returns its measurements.
func Run(cfg RunConfig) RunResult { return harness.Run(cfg) }
