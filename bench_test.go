// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E9), plus
// microbenchmarks of the core data structures. Custom metrics carry the
// paper-shape quantities: convergence/recovery latencies in virtual ticks,
// message overheads per CS entry.
//
//	go test -bench=. -benchmem
package graybox

import (
	"math/rand"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/channel"
	gb "github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/ring"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/synth"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/tokenring"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// BenchmarkFig1Counterexample is E1: decide all four Figure-1 queries.
func BenchmarkFig1Counterexample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, c := gb.Fig1A(), gb.Fig1C()
		if r := gb.Implements(c, a); !r.Holds {
			b.Fatal("fig1 implements broke")
		}
		if ok, _ := gb.SelfStabilizing(a); !ok {
			b.Fatal("fig1 self-stabilization broke")
		}
		if ok, _ := gb.StabilizingTo(c, a); ok {
			b.Fatal("fig1 counterexample broke")
		}
		if r := gb.EverywhereImplements(c, a); r.Holds {
			b.Fatal("fig1 everywhere broke")
		}
	}
}

// stabilizationRun is one E2/E3 measurement: wrapped system, mixed fault
// bursts, monitored convergence.
func stabilizationRun(b *testing.B, algo harness.Algo) {
	b.Helper()
	var convSum, runs int64
	for i := 0; i < b.N; i++ {
		r := harness.Run(harness.RunConfig{
			Algo: algo, N: 4,
			Seed: int64(i), FaultSeed: int64(i) + 1000,
			Delta:      5,
			FaultTimes: []int64{200, 300}, FaultsPerBurst: 10,
			MaxRequests: 30,
			Horizon:     20000,
			Monitor:     true,
		})
		if !r.Converged {
			b.Fatalf("seed %d did not converge: %+v", i, r)
		}
		convSum += r.ConvergenceTime
		runs++
	}
	b.ReportMetric(float64(convSum)/float64(runs), "conv-ticks/run")
}

// BenchmarkStabilizeRA is E2 (Theorem 8 on Ricart–Agrawala).
func BenchmarkStabilizeRA(b *testing.B) { stabilizationRun(b, harness.RA) }

// BenchmarkStabilizeLamport is E3 (Corollary 11 on Lamport ME).
func BenchmarkStabilizeLamport(b *testing.B) { stabilizationRun(b, harness.Lamport) }

// BenchmarkDeadlockRecovery is E4: break the §4 deadlock with W'.
func BenchmarkDeadlockRecovery(b *testing.B) {
	var latSum int64
	for i := 0; i < b.N; i++ {
		r := harness.Run(harness.RunConfig{
			Algo: harness.RA, N: 4,
			Seed:          int64(i),
			Delta:         5,
			DeadlockFault: true,
			Horizon:       20000,
		})
		if r.FirstEntryAfterFault < 0 {
			b.Fatalf("seed %d: wrapper failed to break the deadlock", i)
		}
		latSum += r.FirstEntryAfterFault - r.LastFault
	}
	b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
}

// BenchmarkTimeoutSweep is E5: δ against recovery latency and steady-state
// overhead.
func BenchmarkTimeoutSweep(b *testing.B) {
	for _, delta := range []int64{0, 5, 20, 100} {
		delta := delta
		b.Run(benchName("delta", delta), func(b *testing.B) {
			var lat, wrapMsgs, entries int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 4, Seed: int64(i),
					Delta:         delta,
					DeadlockFault: true,
					Horizon:       20000,
				})
				lat += r.FirstEntryAfterFault - r.LastFault
				clean := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 4, Seed: int64(i), Delta: delta,
				})
				wrapMsgs += int64(clean.WrapperMsgs)
				entries += int64(clean.Entries)
			}
			b.ReportMetric(float64(lat)/float64(b.N), "recovery-ticks/run")
			if entries > 0 {
				b.ReportMetric(float64(wrapMsgs)/float64(entries), "wrapper-msgs/entry")
			}
		})
	}
}

// BenchmarkInterferenceFreedom is E6: fault-free runs with and without the
// wrapper must agree on everything but wrapper traffic.
func BenchmarkInterferenceFreedom(b *testing.B) {
	for _, delta := range []int64{harness.NoWrapper, 10} {
		delta := delta
		name := "wrapped"
		if delta == harness.NoWrapper {
			name = "bare"
		}
		b.Run(name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 5, Seed: int64(i),
					Delta:   delta,
					Monitor: true,
				})
				if r.Violations != 0 || len(r.Starved) != 0 {
					b.Fatalf("seed %d: fault-free run not clean", i)
				}
				entries += int64(r.Entries)
			}
			b.ReportMetric(float64(entries)/float64(b.N), "entries/run")
		})
	}
}

// BenchmarkLspecImpliesTME is E7: monitored fault-free runs of both
// programs stay violation-free.
func BenchmarkLspecImpliesTME(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, algo := range []harness.Algo{harness.RA, harness.Lamport} {
			r := harness.Run(harness.RunConfig{
				Algo: algo, N: 4, Seed: int64(i),
				Delta:   harness.NoWrapper,
				Monitor: true,
			})
			if r.Violations != 0 {
				b.Fatalf("%v seed %d: %d violations", algo, i, r.Violations)
			}
		}
	}
}

// BenchmarkScalability is E8: wrapper cost across system sizes.
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{3, 5, 8, 12} {
		n := n
		b.Run(benchName("n", int64(n)), func(b *testing.B) {
			var wrapMsgs, entries int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: n,
					Seed: int64(i), FaultSeed: int64(i) + 4000,
					Delta:      10,
					FaultTimes: []int64{200}, FaultsPerBurst: 2 * n,
					MaxRequests: 20,
				})
				wrapMsgs += int64(r.WrapperMsgs)
				entries += int64(r.Entries)
			}
			if entries > 0 {
				b.ReportMetric(float64(wrapMsgs)/float64(entries), "wrapper-msgs/entry")
			}
		})
	}
}

// BenchmarkSynthesis is E9: synthesize and verify recovery strategies on
// random 64-state specifications.
func BenchmarkSynthesis(b *testing.B) {
	rng := rand.New(rand.NewSource(2001))
	for i := 0; i < b.N; i++ {
		a := gb.Random(rng, "a", 64, 2.0)
		st, err := synth.Synthesize(a, synth.AllCandidates(64))
		if err != nil {
			b.Fatal(err)
		}
		if ok, _ := gb.StabilizingTo(st.Wrapped(a), a); !ok {
			b.Fatal("synthesized wrapper not stabilizing")
		}
	}
}

// BenchmarkWhiteboxBaseline is E10: Dijkstra's token ring converging from
// random corruption — the whitebox comparator.
func BenchmarkWhiteboxBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var moves int64
	for i := 0; i < b.N; i++ {
		ring := tokenring.New(8, 9)
		ring.Corrupt(rng)
		m, ok := ring.Converge(rng, 1<<20)
		if !ok {
			b.Fatal("token ring did not converge")
		}
		moves += int64(m)
	}
	b.ReportMetric(float64(moves)/float64(b.N), "moves/run")
}

// BenchmarkTokenCirculation is E11: the second case study's headline —
// regeneration recovering a dead ring.
func BenchmarkTokenCirculation(b *testing.B) {
	var latSum int64
	for i := 0; i < b.N; i++ {
		s := ring.NewSim(ring.SimConfig{
			N: 6, Seed: int64(i),
			NewNode:      func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
			WrapperDelta: 25,
		})
		s.Run(50)
		s.DropAllInFlight()
		s.StealToken()
		faultAt := s.Now()
		before := 0
		for _, a := range s.Metrics().Accepts {
			before += a
		}
		for s.Now() < faultAt+3000 {
			s.Tick()
			total := 0
			for _, a := range s.Metrics().Accepts {
				total += a
			}
			if total > before {
				break
			}
		}
		if s.Metrics().Regenerations == 0 {
			b.Fatal("ring never recovered")
		}
		latSum += s.Now() - faultAt
	}
	b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
}

// BenchmarkRefinementAblation is E12: refined vs unrefined W overhead on
// the deadlock scenario.
func BenchmarkRefinementAblation(b *testing.B) {
	for _, unrefined := range []bool{false, true} {
		unrefined := unrefined
		name := "refined"
		if unrefined {
			name = "unrefined"
		}
		b.Run(name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 4, Seed: int64(i),
					Delta: 5, Unrefined: unrefined,
					DeadlockFault: true, Horizon: 20000,
				})
				if r.EntriesAfterFault == 0 {
					b.Fatal("no recovery")
				}
				msgs += int64(r.WrapperMsgs)
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "wrapper-msgs/run")
		})
	}
}

// BenchmarkLevel1Ablation is E13: PhaseGuard repairing sub-Lspec phase
// corruption.
func BenchmarkLevel1Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{
			N: 4, Seed: int64(i),
			NewNode:     func(id, n int) tme.Node { return ra.New(id, n) },
			Workload:    true,
			MaxRequests: 20,
			Level1:      wrapper.PhaseGuard{},
			NewWrapper: func(int) wrapper.Level2 {
				return wrapper.NewTimed(5)
			},
			WrapperEvery: 5,
		})
		s.At(200, func(s *sim.Sim) {
			for id := 0; id < s.N(); id++ {
				if c, ok := s.Node(id).(tme.Corruptible); ok {
					c.Corrupt(tme.Corruption{Phase: tme.Phase(7)})
				}
			}
		})
		s.Run(20000)
		for id := 0; id < s.N(); id++ {
			if !s.Node(id).Phase().Valid() {
				b.Fatal("invalid phase survived PhaseGuard")
			}
		}
	}
}

// --- Microbenchmarks of the substrates ---

// BenchmarkWrapperGuard measures one W evaluation over a hungry view.
func BenchmarkWrapperGuard(b *testing.B) {
	nd := ra.New(0, 16)
	nd.RequestCS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if msgs := wrapper.W(nd); len(msgs) == 0 {
			b.Fatal("guard unexpectedly closed")
		}
	}
}

// BenchmarkSimThroughput measures raw simulator event throughput on a
// fault-free 8-process workload.
func BenchmarkSimThroughput(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{
			N: 8, Seed: int64(i),
			NewNode:     func(id, n int) tme.Node { return ra.New(id, n) },
			Workload:    true,
			MaxRequests: 20,
		})
		events += s.Run(1 << 20)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkObsOverhead quantifies the observability tax on the raw
// simulator: "disabled" runs with a nil obs bundle, where every instrument
// call is a nil-receiver no-op — this is the path covered by the <2%
// overhead budget — and "enabled" runs with a live registry, convergence
// tracker, and trace ring.
func BenchmarkObsOverhead(b *testing.B) {
	workload := func(b *testing.B, mk func() *obs.Obs) {
		var events int64
		for i := 0; i < b.N; i++ {
			s := sim.New(sim.Config{
				N: 8, Seed: int64(i),
				NewNode:     func(id, n int) tme.Node { return ra.New(id, n) },
				Workload:    true,
				MaxRequests: 20,
				Obs:         mk(),
			})
			events += s.Run(1 << 20)
		}
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
	}
	b.Run("disabled", func(b *testing.B) {
		workload(b, func() *obs.Obs { return nil })
	})
	b.Run("enabled", func(b *testing.B) {
		workload(b, func() *obs.Obs { return obs.New(obs.Options{}) })
	})
	b.Run("enabled-trace", func(b *testing.B) {
		workload(b, func() *obs.Obs { return obs.New(obs.Options{TraceCapacity: 4096}) })
	})
}

// BenchmarkNodeDeliver measures one RA request delivery round-trip.
func BenchmarkNodeDeliver(b *testing.B) {
	sender := ra.New(0, 2)
	msgs := sender.RequestCS()
	receiver := ra.New(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		receiver.Deliver(msgs[0])
	}
}

// BenchmarkLamportInsert measures queue insertion under the one-entry-per-
// process discipline.
func BenchmarkLamportInsert(b *testing.B) {
	nd := lamport.New(0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := 1 + i%63
		nd.Deliver(tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(i), PID: from},
			From: from, To: 0,
		})
	}
}

// BenchmarkTimestampLess measures the total-order comparison.
func BenchmarkTimestampLess(b *testing.B) {
	x := ltime.Timestamp{Clock: 3, PID: 1}
	y := ltime.Timestamp{Clock: 3, PID: 2}
	for i := 0; i < b.N; i++ {
		if !x.Less(y) {
			b.Fatal("order broke")
		}
	}
}

// BenchmarkFIFOSendRecv measures the channel substrate.
func BenchmarkFIFOSendRecv(b *testing.B) {
	var q channel.FIFO[tme.Message]
	m := tme.Message{Kind: tme.Request, From: 0, To: 1}
	for i := 0; i < b.N; i++ {
		q.Send(m)
		if _, ok := q.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

// BenchmarkStabilizingToLarge measures the model checker on a 4096-state
// random system.
func BenchmarkStabilizingToLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := gb.Random(rng, "a", 4096, 2.0)
	c := gb.RandomSub(rng, "c", a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb.StabilizingTo(c, a)
	}
}

func benchName(prefix string, v int64) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
