package graybox_test

import (
	"testing"

	graybox "github.com/graybox-stabilization/graybox"
)

// The facade end-to-end: Figure 1 through the public API.
func TestFacadeFormalFramework(t *testing.T) {
	a, c := graybox.Fig1A(), graybox.Fig1C()
	if !graybox.Implements(c, a).Holds {
		t.Error("Implements via facade failed")
	}
	if graybox.EverywhereImplements(c, a).Holds {
		t.Error("EverywhereImplements via facade should fail")
	}
	ok, lasso := graybox.StabilizingTo(c, a)
	if ok || lasso == nil {
		t.Error("StabilizingTo via facade wrong")
	}
	st, err := graybox.Synthesize(a, graybox.AllCandidates(a.NumStates()))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := graybox.StabilizingTo(st.Wrapped(c), a); !ok {
		t.Error("synthesized wrapper via facade failed")
	}
	// Builder + Box + Product round trip.
	x := graybox.NewSystem("x", 2).AddTransition(0, 1).AddTransition(1, 0).SetInit(0).MustBuild()
	y := graybox.NewSystem("y", 2).AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	if _, err := graybox.Box(x, y); err != nil {
		t.Errorf("Box via facade: %v", err)
	}
	if _, err := graybox.Product("p", x, y); err != nil {
		t.Errorf("Product via facade: %v", err)
	}
}

// The facade end-to-end: a monitored, wrapped, faulty simulation using
// only public names — the README's advertised usage.
func TestFacadeSimulation(t *testing.T) {
	s := graybox.NewSim(graybox.SimConfig{
		N:       3,
		Seed:    1,
		NewNode: graybox.NewRicartAgrawala,
		NewWrapper: func(int) graybox.Level2 {
			return graybox.NewTimedWrapper(5)
		},
		Workload:    true,
		MaxRequests: 5,
	})
	mon := graybox.NewMonitors(3)
	s.SetObserver(mon.AsObserver())
	in := graybox.NewInjector(7, graybox.FaultMix{Loss: 1, State: 1})
	in.Schedule(s, []int64{50}, 5)
	s.Run(10000)
	if len(s.Metrics().Entries) == 0 {
		t.Fatal("no entries through the facade")
	}
	if starved := mon.StarvedProcesses(); len(starved) != 0 {
		t.Errorf("starved: %v", starved)
	}
}

// The harness through the facade, with both algorithms.
func TestFacadeHarness(t *testing.T) {
	for _, algo := range []graybox.Algo{graybox.RicartAgrawala, graybox.Lamport} {
		r := graybox.Run(graybox.RunConfig{
			Algo: algo, N: 3, Seed: 2,
			Delta:         5,
			DeadlockFault: true,
			Horizon:       20000,
		})
		if !r.Converged {
			t.Errorf("%v facade run did not converge", algo)
		}
	}
	// And the wrapperless sentinel.
	r := graybox.Run(graybox.RunConfig{
		Algo: graybox.RicartAgrawala, N: 3, Seed: 2,
		Delta:         graybox.NoWrapper,
		DeadlockFault: true,
		Horizon:       5000,
	})
	if r.Converged {
		t.Error("unwrapped deadlock converged via facade")
	}
}

// The wrapper primitives and phases through the facade.
func TestFacadeWrapperAndNodes(t *testing.T) {
	nd := graybox.NewLamport(0, 2)
	if nd.Phase() != graybox.Thinking {
		t.Error("phase constant mismatch")
	}
	nd.RequestCS()
	if nd.Phase() != graybox.Hungry {
		t.Error("RequestCS via facade failed")
	}
	if msgs := graybox.W(nd); len(msgs) != 1 {
		t.Errorf("W via facade sent %d messages", len(msgs))
	}
	var l2 graybox.Level2 = graybox.WrapperFunc(graybox.W)
	if got := l2.Fire(0, nd); len(got) != 1 {
		t.Errorf("WrapperFunc via facade sent %d", len(got))
	}
}
